/// Checkpoint/restart suite (DESIGN.md §5.5). The headline property: crash
/// at superstep k plus --resume reproduces the uninterrupted run's final
/// matching AND per-category cost ledger bit for bit, across grid sizes,
/// host-thread counts and mask on/off. Around it: the on-disk format's
/// negative paths (truncated, corrupt, wrong version, wrong magic), the
/// structured refusal of incompatible resumes (grid shape, options,
/// permutation fingerprint), the checkpoint-writes-charge-nothing rule, and
/// mcmcheck conservation asserts on tampered restored state.

#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "dist/dist_mat.hpp"
#include "gen/rmat.hpp"
#include "gridsim/faultsim.hpp"
#include "gridsim/mcmcheck.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

CooMatrix test_graph() {
  Rng rng(1);
  RmatParams params = RmatParams::g500(8);
  params.edge_factor = 8.0;
  return rmat(params, rng);
}

/// A fresh, empty scratch directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("mcm_ckpt_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct RunSpec {
  int processes = 16;
  int host_threads = 1;
  bool mask = true;
  WireFormat wire = WireFormat::Auto;
  std::string ckpt_dir;
  std::uint64_t every = 2;
  bool resume = false;
  std::shared_ptr<FaultPlan> faults;
  std::uint64_t permute_seed = 7;
  std::uint64_t semiring_seed = 1;
};

PipelineResult run(const CooMatrix& coo, const RunSpec& spec) {
  SimConfig config;
  config.cores = spec.processes;
  config.threads_per_process = 1;
  config.host_threads = spec.host_threads;
  config.wire = spec.wire;
  PipelineOptions options;
  options.initializer = MaximalKind::None;  // plenty of supersteps to crash in
  options.permute_seed = spec.permute_seed;
  options.mcm.use_mask = spec.mask;
  options.mcm.seed = spec.semiring_seed;
  options.mcm.checkpoint.dir = spec.ckpt_dir;
  options.mcm.checkpoint.every = spec.every;
  options.resume = spec.resume;
  options.faults = spec.faults;
  return run_pipeline(config, coo, options);
}

/// Runs with a crash scheduled at `step`, asserting that it fires.
void run_expecting_crash(const CooMatrix& coo, RunSpec spec,
                         std::uint64_t step) {
  spec.faults = std::make_shared<FaultPlan>(
      FaultPlan::parse("crash:step=" + std::to_string(step), /*seed=*/1));
  try {
    (void)run(coo, spec);
    FAIL() << "scheduled crash at superstep " << step << " did not fire";
  } catch (const SimFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Crash);
    EXPECT_EQ(fault.superstep(), step);
  }
}

void expect_ledger_identical(const CostLedger& a, const CostLedger& b) {
  for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
    const Cost cat = static_cast<Cost>(c);
    // Exact, not near: resume must replay the very same charges.
    EXPECT_EQ(a.time_us(cat), b.time_us(cat)) << cost_name(cat);
    EXPECT_EQ(a.messages(cat), b.messages(cat)) << cost_name(cat);
    EXPECT_EQ(a.words(cat), b.words(cat)) << cost_name(cat);
    EXPECT_EQ(a.wire_raw(cat), b.wire_raw(cat)) << cost_name(cat);
    EXPECT_EQ(a.wire_sent(cat), b.wire_sent(cat)) << cost_name(cat);
  }
}

CheckpointError::Kind load_failure_kind(const std::string& path) {
  try {
    (void)load_checkpoint(path);
  } catch (const CheckpointError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "load_checkpoint(" << path << ") did not throw";
  return CheckpointError::Kind::Io;
}

/// A small but fully populated snapshot for format tests.
Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.header.n_rows = 6;
  ck.header.n_cols = 5;
  ck.header.matrix_nnz = 17;
  ck.header.processes = 4;
  ck.header.threads_per_process = 1;
  ck.header.semiring = 1;
  ck.header.direction = 2;
  ck.header.augment = 1;
  ck.header.enable_prune = false;
  ck.header.use_mask = true;
  ck.header.seed = 42;
  ck.header.pipeline_tag = 15;
  ck.header.iteration = 9;
  ck.header.found_path = true;
  ck.header.frontier_nnz = 2;
  ck.header.stats.phases = 3;
  ck.header.stats.iterations = 9;
  ck.header.stats.bottom_up_iterations = 2;
  ck.header.stats.augmentations = 4;
  ck.header.stats.path_parallel_phases = 1;
  ck.header.stats.level_parallel_phases = 2;
  ck.header.stats.initial_cardinality = 3;
  ck.machine.alpha_us = 1.25;
  ck.machine.beta_word_us = 0.004;
  ck.machine.edge_time_us = 0.001;
  ck.machine.elem_time_us = 0.0005;
  ck.header.wire = static_cast<int>(WireFormat::Auto);
  ck.ledger.set_raw(Cost::SpMV, 123.456, 7, 890, 1200, 890);
  ck.ledger.set_raw(Cost::Invert, 0.125, 3, 44, 60, 44);
  ck.ledger.set_raw(Cost::Other, 1e-9, 0, 1, 0, 0);
  ck.init_us = 55.5;
  ck.pre_init_us = 2.75;
  ck.mate_r = {kNull, 2, 0, kNull, 1, 4};
  ck.mate_c = {2, 4, 1, kNull, 5};
  ck.pi_r = {kNull, 3, 3, kNull, 0, kNull};
  ck.path_c = {kNull, kNull, kNull, kNull, kNull};
  ck.frontier_idx = {0, 3};
  ck.frontier_val = {Vertex{1, 3}, Vertex{4, 0}};
  return ck;
}

TEST(CheckpointFormat, FileNamesSortByBoundary) {
  EXPECT_EQ(checkpoint_file_name(7), "checkpoint-0000000007.mcmckpt");
  EXPECT_EQ(checkpoint_file_name(1234567), "checkpoint-0001234567.mcmckpt");
  EXPECT_LT(checkpoint_file_name(9), checkpoint_file_name(10));  // zero-pad
}

TEST(CheckpointFormat, FindLatestPicksTheHighestBoundary) {
  const std::string dir = fresh_dir("find_latest");
  for (const std::uint64_t iter : {0ULL, 2ULL, 10ULL, 4ULL}) {
    std::ofstream(dir + "/" + checkpoint_file_name(iter)) << "x";
  }
  std::ofstream(dir + "/not-a-checkpoint.txt") << "x";  // ignored
  EXPECT_EQ(find_latest_checkpoint(dir), dir + "/" + checkpoint_file_name(10));
}

TEST(CheckpointFormat, FindLatestRefusesEmptyOrMissingDirectories) {
  try {
    (void)find_latest_checkpoint(fresh_dir("find_empty"));
    FAIL() << "empty directory should not yield a checkpoint";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointError::Kind::NotFound);
  }
  EXPECT_THROW((void)find_latest_checkpoint("/nonexistent/mcm/ckpt/dir"),
               CheckpointError);
}

TEST(CheckpointFormat, RoundTripIsFieldExact) {
  const std::string dir = fresh_dir("roundtrip");
  const Checkpoint ck = sample_checkpoint();
  const std::string path = dir + "/" + checkpoint_file_name(ck.header.iteration);
  save_checkpoint(ck, path);
  const Checkpoint back = load_checkpoint(path);

  EXPECT_EQ(back.header.version, kCheckpointVersion);
  EXPECT_EQ(back.header.n_rows, ck.header.n_rows);
  EXPECT_EQ(back.header.n_cols, ck.header.n_cols);
  EXPECT_EQ(back.header.matrix_nnz, ck.header.matrix_nnz);
  EXPECT_EQ(back.header.processes, ck.header.processes);
  EXPECT_EQ(back.header.threads_per_process, ck.header.threads_per_process);
  EXPECT_EQ(back.header.semiring, ck.header.semiring);
  EXPECT_EQ(back.header.direction, ck.header.direction);
  EXPECT_EQ(back.header.augment, ck.header.augment);
  EXPECT_EQ(back.header.enable_prune, ck.header.enable_prune);
  EXPECT_EQ(back.header.use_mask, ck.header.use_mask);
  EXPECT_EQ(back.header.seed, ck.header.seed);
  EXPECT_EQ(back.header.pipeline_tag, ck.header.pipeline_tag);
  EXPECT_EQ(back.header.iteration, ck.header.iteration);
  EXPECT_EQ(back.header.found_path, ck.header.found_path);
  EXPECT_EQ(back.header.frontier_nnz, ck.header.frontier_nnz);
  EXPECT_EQ(back.header.stats.phases, ck.header.stats.phases);
  EXPECT_EQ(back.header.stats.iterations, ck.header.stats.iterations);
  EXPECT_EQ(back.header.stats.bottom_up_iterations,
            ck.header.stats.bottom_up_iterations);
  EXPECT_EQ(back.header.stats.augmentations, ck.header.stats.augmentations);
  EXPECT_EQ(back.header.stats.path_parallel_phases,
            ck.header.stats.path_parallel_phases);
  EXPECT_EQ(back.header.stats.level_parallel_phases,
            ck.header.stats.level_parallel_phases);
  EXPECT_EQ(back.header.stats.initial_cardinality,
            ck.header.stats.initial_cardinality);
  // Doubles travel in the binary payload precisely so this holds bit-exactly.
  EXPECT_EQ(back.machine.alpha_us, ck.machine.alpha_us);
  EXPECT_EQ(back.machine.beta_word_us, ck.machine.beta_word_us);
  EXPECT_EQ(back.machine.edge_time_us, ck.machine.edge_time_us);
  EXPECT_EQ(back.machine.elem_time_us, ck.machine.elem_time_us);
  EXPECT_EQ(back.init_us, ck.init_us);
  EXPECT_EQ(back.pre_init_us, ck.pre_init_us);
  expect_ledger_identical(back.ledger, ck.ledger);
  EXPECT_EQ(back.mate_r, ck.mate_r);
  EXPECT_EQ(back.mate_c, ck.mate_c);
  EXPECT_EQ(back.pi_r, ck.pi_r);
  EXPECT_EQ(back.path_c, ck.path_c);
  EXPECT_EQ(back.frontier_idx, ck.frontier_idx);
  ASSERT_EQ(back.frontier_val.size(), ck.frontier_val.size());
  for (std::size_t i = 0; i < ck.frontier_val.size(); ++i) {
    EXPECT_EQ(back.frontier_val[i].parent, ck.frontier_val[i].parent);
    EXPECT_EQ(back.frontier_val[i].root, ck.frontier_val[i].root);
  }
}

TEST(CheckpointFormat, RefusesDamagedFiles) {
  const std::string dir = fresh_dir("damaged");
  const std::string good = dir + "/" + checkpoint_file_name(0);
  save_checkpoint(sample_checkpoint(), good);
  const auto file_size = std::filesystem::file_size(good);

  // Not a checkpoint at all.
  const std::string garbage = dir + "/garbage.mcmckpt";
  std::ofstream(garbage) << "definitely not a checkpoint\n";
  EXPECT_EQ(load_failure_kind(garbage), CheckpointError::Kind::BadFormat);

  // A format version this build does not speak.
  const std::string future = dir + "/future.mcmckpt";
  std::ofstream(future) << "MCMCKPT 999\n{\"version\": 999}\n";
  EXPECT_EQ(load_failure_kind(future), CheckpointError::Kind::VersionMismatch);

  // Payload shorter than the header promises (torn write).
  const std::string truncated = dir + "/truncated.mcmckpt";
  std::filesystem::copy_file(good, truncated);
  std::filesystem::resize_file(truncated, file_size - 16);
  EXPECT_EQ(load_failure_kind(truncated), CheckpointError::Kind::Truncated);

  // Right length, flipped payload byte: checksum catches it.
  const std::string corrupt = dir + "/corrupt.mcmckpt";
  std::filesystem::copy_file(good, corrupt);
  {
    std::fstream patch(corrupt,
                       std::ios::in | std::ios::out | std::ios::binary);
    patch.seekp(static_cast<std::streamoff>(file_size) - 3);
    patch.put('\xff');
  }
  EXPECT_EQ(load_failure_kind(corrupt), CheckpointError::Kind::Corrupt);

  // Missing file.
  EXPECT_THROW((void)load_checkpoint(dir + "/absent.mcmckpt"),
               CheckpointError);
}

CheckpointError::Kind resume_failure_kind(const CooMatrix& coo,
                                          const RunSpec& spec) {
  try {
    (void)run(coo, spec);
  } catch (const CheckpointError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "incompatible resume was not refused";
  return CheckpointError::Kind::Io;
}

TEST(CheckpointResume, IncompatibleResumesAreRefusedStructurally) {
  const CooMatrix coo = test_graph();
  RunSpec spec;
  spec.ckpt_dir = fresh_dir("refusals");
  run_expecting_crash(coo, spec, /*step=*/4);

  RunSpec resume = spec;
  resume.resume = true;

  // A p=16 snapshot must refuse to resume under p=4.
  RunSpec wrong_grid = resume;
  wrong_grid.processes = 4;
  EXPECT_EQ(resume_failure_kind(coo, wrong_grid),
            CheckpointError::Kind::ShapeMismatch);

  // Same shape, different algorithm options.
  RunSpec wrong_seed = resume;
  wrong_seed.semiring_seed = 99;
  EXPECT_EQ(resume_failure_kind(coo, wrong_seed),
            CheckpointError::Kind::OptionMismatch);
  RunSpec wrong_mask = resume;
  wrong_mask.mask = !resume.mask;
  EXPECT_EQ(resume_failure_kind(coo, wrong_mask),
            CheckpointError::Kind::OptionMismatch);

  // Same options, different wire format: the ledger would not replay.
  RunSpec wrong_wire = resume;
  wrong_wire.wire = WireFormat::Raw;
  EXPECT_EQ(resume_failure_kind(coo, wrong_wire),
            CheckpointError::Kind::OptionMismatch);

  // Same options, different input permutation (pipeline fingerprint).
  RunSpec wrong_perm = resume;
  wrong_perm.permute_seed = 8;
  EXPECT_EQ(resume_failure_kind(coo, wrong_perm),
            CheckpointError::Kind::OptionMismatch);

  // Resume without a checkpoint directory at all.
  RunSpec no_dir = resume;
  no_dir.ckpt_dir.clear();
  EXPECT_EQ(resume_failure_kind(coo, no_dir),
            CheckpointError::Kind::NotFound);

  // The matching run itself still works.
  EXPECT_NO_THROW((void)run(coo, resume));
}

TEST(CheckpointResume, CheckpointWritesChargeNoSimulatedTime) {
  const CooMatrix coo = test_graph();
  RunSpec plain;
  const PipelineResult without = run(coo, plain);
  RunSpec checkpointed = plain;
  checkpointed.ckpt_dir = fresh_dir("charge_nothing");
  checkpointed.every = 1;  // write at every boundary — still free
  const PipelineResult with = run(coo, checkpointed);

  EXPECT_EQ(without.matching.mate_r, with.matching.mate_r);
  EXPECT_EQ(without.matching.mate_c, with.matching.mate_c);
  expect_ledger_identical(without.ledger, with.ledger);
  EXPECT_EQ(without.mcm_seconds, with.mcm_seconds);
  EXPECT_FALSE(
      std::filesystem::is_empty(std::filesystem::path(checkpointed.ckpt_dir)));
}

/// The acceptance property: for every (p, host_threads, mask) combination,
/// crash-at-k + resume finishes with the same matching, the same
/// per-category ledger (exact doubles) and the same reported time split as
/// the run that was never interrupted.
TEST(CheckpointResume, CrashPlusResumeIsBitIdenticalAcrossTheMatrix) {
  const CooMatrix coo = test_graph();
  int combo = 0;
  for (const int processes : {1, 4, 16}) {
    for (const int host_threads : {1, 4}) {
      for (const bool mask : {true, false}) {
        SCOPED_TRACE("p=" + std::to_string(processes) + " host_threads="
                     + std::to_string(host_threads)
                     + " mask=" + std::to_string(mask));
        RunSpec spec;
        spec.processes = processes;
        spec.host_threads = host_threads;
        spec.mask = mask;

        const PipelineResult reference = run(coo, spec);

        RunSpec faulty = spec;
        faulty.ckpt_dir = fresh_dir("matrix_" + std::to_string(combo++));
        faulty.every = 2;
        run_expecting_crash(coo, faulty, /*step=*/4);

        RunSpec resumed_spec = faulty;
        resumed_spec.faults = nullptr;  // plans are not persisted in snapshots
        resumed_spec.resume = true;
        const PipelineResult resumed = run(coo, resumed_spec);

        EXPECT_EQ(resumed.resumed_from, faulty.ckpt_dir + "/"
                                            + checkpoint_file_name(4));
        EXPECT_EQ(reference.matching.mate_r, resumed.matching.mate_r);
        EXPECT_EQ(reference.matching.mate_c, resumed.matching.mate_c);
        expect_ledger_identical(reference.ledger, resumed.ledger);
        EXPECT_EQ(reference.init_seconds, resumed.init_seconds);
        EXPECT_EQ(reference.mcm_seconds, resumed.mcm_seconds);
        EXPECT_EQ(reference.mcm_stats.final_cardinality,
                  resumed.mcm_stats.final_cardinality);
        EXPECT_EQ(reference.mcm_stats.augmentations,
                  resumed.mcm_stats.augmentations);
      }
    }
  }
}

/// Edge case: a crash at the very last superstep boundary — the one whose
/// frontier probe comes up empty and ends the phase. The snapshot written
/// just before that crash carries an already-empty (or phase-final)
/// frontier; resume must reconstruct the visited bitmap from the parent
/// vector, re-probe, and terminate cleanly instead of re-entering the BFS
/// loop — and still finish bit-identical to the uninterrupted run.
TEST(CheckpointResume, ResumeAtFinalEmptyFrontierBoundaryTerminates) {
  const CooMatrix coo = test_graph();
  for (const bool mask : {true, false}) {
    SCOPED_TRACE("mask=" + std::to_string(mask));
    RunSpec spec;
    spec.mask = mask;
    spec.every = 1;  // snapshot every boundary, including the last
    const PipelineResult reference = run(coo, spec);

    // Discover the last boundary an uninterrupted run checkpoints at.
    RunSpec probe = spec;
    probe.ckpt_dir = fresh_dir(std::string("final_probe_") +
                               (mask ? "mask" : "nomask"));
    (void)run(coo, probe);
    const std::uint64_t k_last =
        load_checkpoint(find_latest_checkpoint(probe.ckpt_dir))
            .header.iteration;

    // Crash exactly there, then resume from the snapshot it left behind.
    RunSpec faulty = spec;
    faulty.ckpt_dir = fresh_dir(std::string("final_crash_") +
                                (mask ? "mask" : "nomask"));
    run_expecting_crash(coo, faulty, k_last);

    RunSpec resumed_spec = faulty;
    resumed_spec.faults = nullptr;
    resumed_spec.resume = true;
    const PipelineResult resumed = run(coo, resumed_spec);

    EXPECT_EQ(resumed.resumed_from,
              faulty.ckpt_dir + "/" + checkpoint_file_name(k_last));
    EXPECT_EQ(reference.matching.mate_r, resumed.matching.mate_r);
    EXPECT_EQ(reference.matching.mate_c, resumed.matching.mate_c);
    expect_ledger_identical(reference.ledger, resumed.ledger);
    EXPECT_EQ(reference.mcm_stats.final_cardinality,
              resumed.mcm_stats.final_cardinality);
    EXPECT_EQ(reference.mcm_stats.phases, resumed.mcm_stats.phases);
    EXPECT_EQ(reference.mcm_stats.iterations, resumed.mcm_stats.iterations);
  }
}

/// mcmcheck guards the restore path: state that no longer conserves its
/// invariants (mate pairing, frontier count) is rejected before the loop
/// runs on it.
TEST(CheckpointResume, TamperedSnapshotFailsConservationChecks) {
  if (!check::kCompiledIn) {
    GTEST_SKIP() << "mcmcheck compiled out (MCM_CHECK=OFF)";
  }
  const CooMatrix coo = test_graph();
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  SimContext ctx(config);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);

  McmDistOptions options;
  options.checkpoint.dir = fresh_dir("tamper");
  options.checkpoint.every = 1;
  const Matching empty(coo.n_rows, coo.n_cols);
  (void)mcm_dist(ctx, dist, empty, options);

  const Checkpoint good =
      load_checkpoint(find_latest_checkpoint(options.checkpoint.dir));
  const CheckMode previous = check::mode();
  check::set_mode(CheckMode::Throw);

  // Break the mate-pairing invariant: one side of a pair forgets the other.
  Checkpoint unpaired = good;
  for (Index& mate : unpaired.mate_c) {
    if (mate != kNull) {
      mate = kNull;
      break;
    }
  }
  McmDistOptions resume_options;
  resume_options.resume = &unpaired;
  SimContext ctx2(config);
  EXPECT_THROW((void)mcm_dist(ctx2, dist, empty, resume_options),
               CheckViolation);

  // A frontier count that disagrees with the payload is refused before the
  // conservation layer even runs — structurally, so it works in Release too.
  Checkpoint miscounted = good;
  miscounted.header.frontier_nnz += 1;
  resume_options.resume = &miscounted;
  SimContext ctx3(config);
  EXPECT_THROW((void)mcm_dist(ctx3, dist, empty, resume_options),
               CheckpointError);

  check::set_mode(previous);
}

/// Restored arrays must agree with the header's idea of the problem size —
/// a snapshot whose payload disagrees with the run's matrix is refused even
/// when it parses cleanly.
TEST(CheckpointResume, ArrayLengthMismatchIsRefused) {
  const CooMatrix coo = test_graph();
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  SimContext ctx(config);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);

  McmDistOptions options;
  options.checkpoint.dir = fresh_dir("short_arrays");
  options.checkpoint.every = 1;
  const Matching empty(coo.n_rows, coo.n_cols);
  (void)mcm_dist(ctx, dist, empty, options);

  Checkpoint shorn =
      load_checkpoint(find_latest_checkpoint(options.checkpoint.dir));
  shorn.mate_r.pop_back();
  McmDistOptions resume_options;
  resume_options.resume = &shorn;
  SimContext ctx2(config);
  try {
    (void)mcm_dist(ctx2, dist, empty, resume_options);
    FAIL() << "short mate_r should be refused";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointError::Kind::BadFormat);
  }
}

}  // namespace
}  // namespace mcm
