/// Differential ("army") test: every maximum-matching implementation in the
/// library — sequential and distributed — must agree on the cardinality of
/// random instances, and the winner must carry a König certificate. This is
/// the broadest single consistency check in the suite and the first place a
/// cross-algorithm regression shows up.

#include <gtest/gtest.h>

#include "core/dist_maximal.hpp"
#include "core/dist_push_relabel.hpp"
#include "core/driver.hpp"
#include "core/mcm_dist.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/msbfs_graft.hpp"
#include "matching/msbfs_seq.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/push_relabel.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

class DifferentialRandom : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialRandom, AllSolversAgreeOnRandomInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random shape and density per trial, including rectangular extremes.
  const Index n_rows = 10 + static_cast<Index>(rng.next_below(120));
  const Index n_cols = 10 + static_cast<Index>(rng.next_below(120));
  const Index max_edges = n_rows * n_cols;
  const Index edges =
      1 + static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(
              std::min<Index>(max_edges, 6 * (n_rows + n_cols)))));
  const CooMatrix coo = er_bipartite_m(n_rows, n_cols, edges, rng);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const CscMatrix at = a.transposed();

  const Matching reference = hopcroft_karp(a);
  const Index optimum = reference.cardinality();
  ASSERT_TRUE(verify_maximum(a, reference)) << "oracle failed";

  const Matching empty(n_rows, n_cols);
  EXPECT_EQ(pothen_fan(a).cardinality(), optimum) << "pothen-fan";
  EXPECT_EQ(msbfs_maximum(a, empty).cardinality(), optimum) << "ms-bfs";
  EXPECT_EQ(msbfs_graft_maximum(a, at, empty).cardinality(), optimum)
      << "ms-bfs-graft";
  EXPECT_EQ(push_relabel_maximum(a, at, empty).cardinality(), optimum)
      << "push-relabel";

  SimContext ctx_mcm = make_ctx(4);
  const DistMatrix dist = DistMatrix::distribute(ctx_mcm, coo);
  EXPECT_EQ(mcm_dist(ctx_mcm, dist, empty).cardinality(), optimum)
      << "mcm-dist";

  SimContext ctx_pr = make_ctx(4);
  EXPECT_EQ(dist_push_relabel(ctx_pr, a).cardinality(), optimum)
      << "dist push-relabel";
}

TEST_P(DifferentialRandom, AllSolversAgreeOnSkewedInstances) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  RmatParams params = RmatParams::g500(7);
  params.edge_factor = 3.0 + rng.next_double() * 6.0;
  const CooMatrix coo = rmat(params, rng);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const CscMatrix at = a.transposed();
  const Index optimum = maximum_matching_size(a);

  const Matching empty(a.n_rows(), a.n_cols());
  EXPECT_EQ(pothen_fan(a).cardinality(), optimum);
  EXPECT_EQ(msbfs_maximum(a, empty).cardinality(), optimum);
  EXPECT_EQ(msbfs_graft_maximum(a, at, empty).cardinality(), optimum);
  EXPECT_EQ(push_relabel_maximum(a, at, empty).cardinality(), optimum);
  const PipelineResult pipeline = run_pipeline(
      SimConfig::auto_config(16, 1), coo);
  EXPECT_EQ(pipeline.matching.cardinality(), optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandom, ::testing::Range(1, 21),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcm
