#include "core/mcm_dist.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/dist_maximal.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

class DirectionOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(DirectionOnCorpus, BottomUpProducesIdenticalMatching) {
  // Bottom-up realizes exactly the minParent semiring, so the *matching*
  // (not just its cardinality) must equal the top-down run's.
  for (const int p : {1, 4, 9}) {
    SimContext ctx_td = make_ctx(p);
    SimContext ctx_bu = make_ctx(p);
    const DistMatrix dist_td = DistMatrix::distribute(ctx_td, GetParam().coo);
    const DistMatrix dist_bu = DistMatrix::distribute(ctx_bu, GetParam().coo);
    const Matching empty(GetParam().coo.n_rows, GetParam().coo.n_cols);
    McmDistOptions top_down;
    top_down.direction = Direction::TopDown;
    McmDistOptions bottom_up;
    bottom_up.direction = Direction::BottomUp;
    EXPECT_EQ(mcm_dist(ctx_bu, dist_bu, empty, bottom_up),
              mcm_dist(ctx_td, dist_td, empty, top_down))
        << GetParam().name << " p=" << p;
  }
}

TEST_P(DirectionOnCorpus, OptimizingReachesOptimum) {
  SimContext ctx = make_ctx(9);
  const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  McmDistOptions options;
  options.direction = Direction::Optimizing;
  McmDistStats stats;
  const Matching m =
      mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), options, &stats);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_LE(stats.bottom_up_iterations, stats.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DirectionOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(Direction, BottomUpWithOtherSemiringThrows) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  McmDistOptions options;
  options.direction = Direction::BottomUp;
  options.semiring = SemiringKind::RandRoot;
  EXPECT_THROW((void)mcm_dist(ctx, dist, Matching(2, 2), options),
               std::invalid_argument);
}

TEST(Direction, OptimizingFallsBackForOtherSemirings) {
  SimContext ctx = make_ctx(4);
  Rng rng(3);
  const CooMatrix coo = er_bipartite_m(40, 40, 200, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  McmDistOptions options;
  options.direction = Direction::Optimizing;
  options.semiring = SemiringKind::RandRoot;
  McmDistStats stats;
  const Matching m = mcm_dist(ctx, dist, Matching(40, 40), options, &stats);
  EXPECT_EQ(stats.bottom_up_iterations, 0);  // silently top-down
  EXPECT_EQ(m.cardinality(),
            maximum_matching_size(CscMatrix::from_coo(coo)));
}

TEST(Direction, OptimizingUsesBottomUpOnDenseFrontiers) {
  // A fully unmatched start makes the first frontier all of C, which the
  // heuristic must route bottom-up.
  SimContext ctx = make_ctx(4);
  Rng rng(5);
  const CooMatrix coo = er_bipartite_m(60, 60, 600, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  McmDistOptions options;
  options.direction = Direction::Optimizing;
  McmDistStats stats;
  (void)mcm_dist(ctx, dist, Matching(60, 60), options, &stats);
  EXPECT_GT(stats.bottom_up_iterations, 0);
}

}  // namespace
}  // namespace mcm
