#include "core/dist_maximal.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

struct Case {
  NamedGraph graph;
  int processes;
  MaximalKind kind;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& graph : small_corpus()) {
    for (const int p : {1, 4, 9}) {
      for (const MaximalKind kind :
           {MaximalKind::Greedy, MaximalKind::KarpSipser,
            MaximalKind::DynMindegree}) {
        cases.push_back({graph, p, kind});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string kind = maximal_kind_name(info.param.kind);
  for (char& c : kind) {
    if (c == '-') c = '_';
  }
  return info.param.graph.name + "_p" + std::to_string(info.param.processes)
         + "_" + kind;
}

class DistMaximalCases : public ::testing::TestWithParam<Case> {};

TEST_P(DistMaximalCases, ProducesValidMaximalMatching) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
  DistMaximalStats stats;
  const Matching m = dist_maximal_matching(ctx, dist, c.kind, &stats);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  const VerifyResult r = verify_maximal(a, m);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_EQ(stats.cardinality, m.cardinality());
  EXPECT_GE(stats.rounds, 1);
  // Half-approximation of any maximal matching.
  EXPECT_GE(2 * m.cardinality(), maximum_matching_size(a));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistMaximalCases,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(DistMaximal, NoneReturnsEmptyMatching) {
  SimContext ctx = make_ctx(4);
  const auto graphs = small_corpus();
  const DistMatrix dist = DistMatrix::distribute(ctx, graphs[3].coo);
  DistMaximalStats stats;
  const Matching m =
      dist_maximal_matching(ctx, dist, MaximalKind::None, &stats);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_EQ(stats.rounds, 0);
}

TEST(DistMaximal, ResultIndependentOfGridSize) {
  // The algorithms are deterministic given the matrix, so every grid size
  // must produce the identical matching (data distribution must not leak
  // into the result).
  const auto graphs = small_corpus();
  for (const MaximalKind kind :
       {MaximalKind::Greedy, MaximalKind::KarpSipser,
        MaximalKind::DynMindegree}) {
    SimContext ctx1 = make_ctx(1);
    SimContext ctx2 = make_ctx(16);
    const Matching m1 = dist_maximal_matching(
        ctx1, DistMatrix::distribute(ctx1, graphs[4].coo), kind);
    const Matching m2 = dist_maximal_matching(
        ctx2, DistMatrix::distribute(ctx2, graphs[4].coo), kind);
    EXPECT_EQ(m1, m2) << maximal_kind_name(kind);
  }
}

TEST(DistMaximal, KarpSipserChargesMoreThanGreedy) {
  // KS pays an extra degree-maintenance SpMV every round — the effect the
  // paper's Fig. 3 builds on.
  const auto graphs = small_corpus();
  const CooMatrix& coo = graphs[8].coo;  // rmat instance
  SimContext ctx_greedy = make_ctx(16);
  SimContext ctx_ks = make_ctx(16);
  (void)dist_maximal_matching(ctx_greedy,
                              DistMatrix::distribute(ctx_greedy, coo),
                              MaximalKind::Greedy);
  (void)dist_maximal_matching(ctx_ks, DistMatrix::distribute(ctx_ks, coo),
                        MaximalKind::KarpSipser);
  EXPECT_GT(ctx_ks.ledger().time_us(Cost::MaximalInit),
            ctx_greedy.ledger().time_us(Cost::MaximalInit));
}

TEST(DistMaximal, AllChargesLandInMaximalInit) {
  SimContext ctx = make_ctx(9);
  const auto graphs = small_corpus();
  const DistMatrix dist = DistMatrix::distribute(ctx, graphs[3].coo);
  (void)dist_maximal_matching(ctx, dist, MaximalKind::DynMindegree);
  EXPECT_GT(ctx.ledger().time_us(Cost::MaximalInit), 0);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::SpMV), 0);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::Invert), 0);
}

}  // namespace
}  // namespace mcm
