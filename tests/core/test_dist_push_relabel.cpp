#include "core/dist_push_relabel.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

struct Case {
  NamedGraph graph;
  int processes;
};

std::vector<Case> grid_cases() {
  std::vector<Case> cases;
  for (const auto& graph : small_corpus()) {
    for (const int p : {1, 4, 16}) cases.push_back({graph, p});
  }
  return cases;
}

class DistPrCases : public ::testing::TestWithParam<Case> {};

TEST_P(DistPrCases, ProducesCertifiedMaximumMatching) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  DistPrStats stats;
  const Matching m = dist_push_relabel(ctx, a, &stats);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
  if (m.cardinality() > 0) {
    EXPECT_GE(stats.rounds, 1);
    EXPECT_GE(stats.pushes, static_cast<std::uint64_t>(m.cardinality()));
  }
}

TEST_P(DistPrCases, ChargesCommunication) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  (void)dist_push_relabel(ctx, a);
  if (c.processes > 1 && a.nnz() > 0) {
    EXPECT_GT(ctx.ledger().time_us(Cost::Other), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistPrCases, ::testing::ValuesIn(grid_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.graph.name + "_p"
                                  + std::to_string(info.param.processes);
                         });

TEST(DistPushRelabel, ResultIndependentOfGridSize) {
  const auto graphs = small_corpus();
  SimContext ctx1 = make_ctx(1);
  SimContext ctx2 = make_ctx(16);
  const CscMatrix a = CscMatrix::from_coo(graphs[4].coo);
  // Conflict arbitration (smallest column) and FIFO order are deterministic
  // given the matrix, but the round grouping differs by p, so only the
  // cardinality is grid-invariant.
  EXPECT_EQ(dist_push_relabel(ctx1, a).cardinality(),
            dist_push_relabel(ctx2, a).cardinality());
}

TEST(DistPushRelabel, ConflictsAriseOnContestedRows) {
  // Many columns, one row: every round all active columns propose the same
  // row; arbitration must reject all but one.
  SimContext ctx = make_ctx(4);
  CooMatrix coo(1, 8);
  for (Index j = 0; j < 8; ++j) coo.add_edge(0, j);
  DistPrStats stats;
  const Matching m = dist_push_relabel(ctx, CscMatrix::from_coo(coo), &stats);
  EXPECT_EQ(m.cardinality(), 1);
  EXPECT_GT(stats.conflicts, 0u);
  EXPECT_EQ(stats.discarded, 7);
}

}  // namespace
}  // namespace mcm
