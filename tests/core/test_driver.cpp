#include "core/driver.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimConfig config_for(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return config;
}

class DriverOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(DriverOnCorpus, PipelineProducesMaximumInOriginalLabels) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const PipelineResult result =
      run_pipeline(config_for(9), GetParam().coo);
  // Verified against the *unpermuted* matrix: proves the permutation was
  // correctly undone.
  const VerifyResult r = verify_maximum(a, result.matching);
  EXPECT_TRUE(r) << r.reason;
}

TEST_P(DriverOnCorpus, PermutationDoesNotChangeCardinality) {
  PipelineOptions with;
  with.random_permute = true;
  PipelineOptions without;
  without.random_permute = false;
  const auto r1 = run_pipeline(config_for(4), GetParam().coo, with);
  const auto r2 = run_pipeline(config_for(4), GetParam().coo, without);
  EXPECT_EQ(r1.matching.cardinality(), r2.matching.cardinality());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DriverOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(Driver, TimingsSplitInitAndMcm) {
  const auto graphs = small_corpus();
  const PipelineResult result = run_pipeline(config_for(16), graphs[3].coo);
  EXPECT_GT(result.init_seconds, 0);
  EXPECT_GT(result.mcm_seconds, 0);
  EXPECT_NEAR(result.total_seconds(),
              result.init_seconds + result.mcm_seconds, 1e-12);
  EXPECT_GT(result.ledger.time_us(Cost::MaximalInit), 0);
  EXPECT_GT(result.ledger.time_us(Cost::SpMV), 0);
}

TEST(Driver, InitializerNoneStartsCold) {
  const auto graphs = small_corpus();
  PipelineOptions options;
  options.initializer = MaximalKind::None;
  const PipelineResult result =
      run_pipeline(config_for(4), graphs[3].coo, options);
  EXPECT_EQ(result.init_stats.cardinality, 0);
  const CscMatrix a = CscMatrix::from_coo(graphs[3].coo);
  EXPECT_EQ(result.matching.cardinality(), maximum_matching_size(a));
}

TEST(Driver, MoreCoresReduceSimulatedTimeOnLargeInstance) {
  // Strong-scaling sanity: the Fig. 4 shape at two points. The instance must
  // be compute-bound for scaling to show (the paper observes the same:
  // "smaller matrices do not scale"), so use ~1M edges.
  Rng rng(5);
  const CooMatrix big = er_bipartite_m(40000, 40000, 1'000'000, rng);
  const auto slow = run_pipeline(SimConfig::auto_config(24, 12), big);
  const auto fast = run_pipeline(SimConfig::auto_config(96, 12), big);
  EXPECT_LT(fast.total_seconds(), slow.total_seconds());
  EXPECT_EQ(fast.matching.cardinality(), slow.matching.cardinality());
}

TEST(Driver, TinyInstanceStopsScaling) {
  // The complementary shape: on a small matrix, a very large grid is
  // latency-bound and *slower* than a small one (paper §VI-B, "MCM-DIST
  // stops scaling on relatively small core counts for smaller matrices").
  Rng rng(6);
  const CooMatrix tiny = er_bipartite_m(500, 500, 3000, rng);
  const auto small_grid = run_pipeline(SimConfig::auto_config(24, 12), tiny);
  const auto huge_grid = run_pipeline(SimConfig::auto_config(6144, 12), tiny);
  EXPECT_GT(huge_grid.total_seconds(), small_grid.total_seconds());
}

TEST(Driver, SeedChangesPermutationNotResult) {
  const auto graphs = small_corpus();
  PipelineOptions a, b;
  a.permute_seed = 1;
  b.permute_seed = 2;
  const auto r1 = run_pipeline(config_for(4), graphs[5].coo, a);
  const auto r2 = run_pipeline(config_for(4), graphs[5].coo, b);
  EXPECT_EQ(r1.matching.cardinality(), r2.matching.cardinality());
}

}  // namespace
}  // namespace mcm
