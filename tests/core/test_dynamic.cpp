/// DynamicMatching (core/dynamic.hpp): the incremental maintainer's headline
/// contract — after ANY prefix of a seeded update stream, the maintained
/// matching has the same cardinality as a from-scratch solve on the mutated
/// graph — across p in {1, 4, 16} x mask on/off x both comm backends, plus
/// the §5.10 case-analysis edge cases (delete of a matched edge, insert
/// whose endpoints are both matched yet completes an augmenting path through
/// a previously dead alternating tree) and per-update ledger conservation.

#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "gen/workload.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"
#include "matrix/csc.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimConfig make_config(int processes, bool use_mask = true,
                      comm::Backend backend = comm::Backend::Gridsim) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.backend = backend;
  (void)use_mask;
  return config;
}

DynamicOptions make_options(bool use_mask) {
  DynamicOptions options;
  options.mcm.use_mask = use_mask;
  return options;
}

Index oracle_cardinality(const CooMatrix& a) {
  return hopcroft_karp(CscMatrix::from_coo(a)).cardinality();
}

/// The equivalence property proper: replay `updates` one at a time and
/// compare the maintained cardinality against a from-scratch solve on the
/// mutated graph after every prefix.
void expect_prefix_equivalence(const CooMatrix& base,
                               const std::vector<EdgeUpdate>& updates,
                               const SimConfig& config,
                               const DynamicOptions& options,
                               const std::string& label) {
  DynamicMatching dyn(config, base, options);
  EXPECT_EQ(dyn.cardinality(), oracle_cardinality(base)) << label;
  CooMatrix mutated = base;
  for (std::size_t k = 0; k < updates.size(); ++k) {
    dyn.apply(updates[k]);
    mutated = apply_edge_updates(mutated, {updates[k]});
    ASSERT_EQ(dyn.cardinality(), oracle_cardinality(mutated))
        << label << " after update " << k;
    const VerifyResult valid =
        verify_valid(CscMatrix::from_coo(mutated), dyn.matching());
    ASSERT_TRUE(valid.ok) << label << " update " << k << ": " << valid.reason;
  }
  // The maintained graph is the canonical mutated graph.
  EXPECT_EQ(dyn.graph().rows, mutated.rows) << label;
  EXPECT_EQ(dyn.graph().cols, mutated.cols) << label;
}

TEST(DynamicEquivalence, PrefixCardinalityMatchesScratchAcrossGrids) {
  for (const NamedGraph& g : small_corpus()) {
    if (g.coo.n_rows < 2 || g.coo.n_cols < 2) continue;
    ChurnConfig churn;
    churn.updates = 20;
    churn.insert_fraction = 0.5;
    churn.seed = 5;
    const std::vector<EdgeUpdate> updates = make_churn(g.coo, churn);
    for (const int p : {1, 4, 16}) {
      expect_prefix_equivalence(g.coo, updates, make_config(p), {},
                                g.name + " p=" + std::to_string(p));
    }
  }
}

TEST(DynamicEquivalence, MaskOnOffAndBothBackendsAgree) {
  Rng rng(17);
  const CooMatrix base = er_bipartite_m(40, 40, 140, rng);
  ChurnConfig churn;
  churn.updates = 24;
  churn.insert_fraction = 0.4;  // delete-heavy: exercises re-augmentation
  churn.seed = 23;
  const std::vector<EdgeUpdate> updates = make_churn(base, churn);
  for (const bool mask : {true, false}) {
    for (const comm::Backend backend :
         {comm::Backend::Gridsim, comm::Backend::Threads}) {
      for (const int p : {1, 4}) {
        expect_prefix_equivalence(
            base, updates, make_config(p, mask, backend), make_options(mask),
            std::string("mask=") + (mask ? "on" : "off") + " backend="
                + comm::backend_name(backend) + " p=" + std::to_string(p));
      }
    }
  }
}

TEST(DynamicEquivalence, ScratchMcmDistAgreesAtEveryPrefix) {
  // The oracle above certifies cardinality; this leg runs the literal
  // contract — a from-scratch MCM-DIST on the mutated graph — on one graph.
  Rng rng(29);
  const CooMatrix base = er_bipartite_m(24, 24, 70, rng);
  ChurnConfig churn;
  churn.updates = 12;
  churn.seed = 31;
  const std::vector<EdgeUpdate> updates = make_churn(base, churn);
  for (const int p : {1, 4, 16}) {
    DynamicMatching dyn(make_config(p), base, {});
    CooMatrix mutated = base;
    for (std::size_t k = 0; k < updates.size(); ++k) {
      dyn.apply(updates[k]);
      mutated = apply_edge_updates(mutated, {updates[k]});
      SimContext scratch_ctx(make_config(p));
      const DistMatrix scratch = DistMatrix::distribute(scratch_ctx, mutated);
      const Matching want =
          mcm_dist(scratch_ctx, scratch,
                   Matching(mutated.n_rows, mutated.n_cols));
      ASSERT_EQ(dyn.cardinality(), want.cardinality())
          << "p=" << p << " update " << k;
    }
  }
}

TEST(DynamicLedger, PerUpdateChargesAreConservedAndMonotonic) {
  Rng rng(41);
  const CooMatrix base = er_bipartite_m(30, 30, 90, rng);
  ChurnConfig churn;
  churn.updates = 16;
  churn.seed = 43;
  const std::vector<EdgeUpdate> updates = make_churn(base, churn);
  DynamicMatching dyn(make_config(4), base, {});
  double prev_total = 0;
  for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
    prev_total += dyn.ledger().time_us(static_cast<Cost>(c));
  }
  EXPECT_GT(prev_total, 0.0);  // the initial solve charged
  for (const EdgeUpdate& u : updates) {
    dyn.apply(u);
    double total = 0;
    for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
      const auto category = static_cast<Cost>(c);
      total += dyn.ledger().time_us(category);
      // Wire conservation: the priced payload never exceeds the raw one.
      EXPECT_LE(dyn.ledger().wire_sent(category),
                dyn.ledger().wire_raw(category));
    }
    EXPECT_GE(total, prev_total);  // simulated time only moves forward
    prev_total = total;
  }
  // Every effective update paid for its delta scatter.
  const DynamicStats& stats = dyn.stats();
  EXPECT_EQ(stats.inserts_applied + stats.deletes_applied,
            static_cast<std::uint64_t>(updates.size()));
  EXPECT_GT(dyn.ledger().wire_raw(Cost::GatherScatter), 0u);
}

TEST(DynamicMatchingUnit, FastPathInsertSkipsTheSolver) {
  // Two isolated vertices on each side: inserting an edge between exposed
  // endpoints must match directly without a solver run.
  CooMatrix base(2, 2);
  base.add_edge(0, 0);
  DynamicMatching dyn(make_config(1), base, {});
  const std::uint64_t runs_before = dyn.stats().solver_runs;
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 1, 1});
  EXPECT_EQ(dyn.cardinality(), 2);
  EXPECT_EQ(dyn.stats().fast_path_matches, 1u);
  EXPECT_EQ(dyn.stats().solver_runs, runs_before);  // no extra solve
}

TEST(DynamicMatchingUnit, NoOpUpdatesAreIgnoredAndFree) {
  CooMatrix base(3, 3);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  DynamicMatching dyn(make_config(1), base, {});
  const std::uint64_t runs_before = dyn.stats().solver_runs;
  const double time_before = dyn.ledger().time_us(Cost::GatherScatter);
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 0, 0});   // already present
  dyn.apply(EdgeUpdate{UpdateKind::Delete, 2, 2});   // absent
  EXPECT_EQ(dyn.stats().inserts_ignored, 1u);
  EXPECT_EQ(dyn.stats().deletes_ignored, 1u);
  EXPECT_EQ(dyn.stats().solver_runs, runs_before);
  EXPECT_EQ(dyn.ledger().time_us(Cost::GatherScatter), time_before);
  EXPECT_EQ(dyn.cardinality(), 2);
}

TEST(DynamicMatchingUnit, DeleteOfMatchedEdgeReAugments) {
  // Planted perfect matching plus noise: deleting a matched edge may cost a
  // unit, but the optimum of the mutated graph is what matters.
  Rng rng(53);
  const CooMatrix base = planted_perfect(12, 30, rng);
  DynamicMatching dyn(make_config(4), base, {});
  EXPECT_EQ(dyn.cardinality(), 12);
  // Delete the matched edge of every column in turn.
  CooMatrix mutated = base;
  for (Index c = 0; c < 4; ++c) {
    const Index r = dyn.matching().mate_c[static_cast<std::size_t>(c)];
    ASSERT_NE(r, kNull);
    const EdgeUpdate u{UpdateKind::Delete, r, c};
    dyn.apply(u);
    mutated = apply_edge_updates(mutated, {u});
    EXPECT_EQ(dyn.cardinality(), oracle_cardinality(mutated)) << "col " << c;
  }
  EXPECT_GE(dyn.stats().matched_deletes, 4u);
  EXPECT_GE(dyn.stats().solver_runs, 4u);
}

TEST(DynamicMatchingUnit, InsertReusingDeadTreeAugmentsWithBothEndpointsMatched) {
  // Steered §5.10 counter-example to the "only if an endpoint is exposed"
  // insertion rule. Base {(0,0), (1,2)} forces the unique maximum matching
  // M = {(0,0), (1,2)}; the two following inserts each trigger a solver run
  // whose BFS trees are dead (no augmenting path exists), so M survives.
  CooMatrix base(3, 3);
  base.add_edge(0, 0);
  base.add_edge(1, 2);
  DynamicMatching dyn(make_config(1), base, {});
  EXPECT_EQ(dyn.cardinality(), 2);
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 0, 1});  // c1 exposed, dead tree
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 2, 2});  // r2 exposed, dead tree
  EXPECT_EQ(dyn.cardinality(), 2);
  // Both endpoints of the next insert are matched...
  ASSERT_EQ(dyn.matching().mate_r[1], 2);
  ASSERT_EQ(dyn.matching().mate_c[0], 0);
  // ...yet inserting (1, 0) completes the augmenting path
  // c1 -> r0 -> c0 -> r1 -> c2 -> r2 through both previously dead trees.
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 1, 0});
  EXPECT_EQ(dyn.cardinality(), 3);
  const VerifyResult maximum =
      verify_maximum(CscMatrix::from_coo(dyn.graph()), dyn.matching());
  EXPECT_TRUE(maximum.ok) << maximum.reason;
}

TEST(DynamicMatchingUnit, SaturatedSideSkipsTheSolver) {
  // Wide graph: once every row is matched, |M| meets the min-side bound and
  // further inserts cannot augment — the maintainer must prove it cheaply.
  CooMatrix base(2, 4);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  DynamicMatching dyn(make_config(1), base, {});
  EXPECT_EQ(dyn.cardinality(), 2);  // rows saturated
  const std::uint64_t runs_before = dyn.stats().solver_runs;
  dyn.apply(EdgeUpdate{UpdateKind::Insert, 0, 2});  // r0 matched, c2 exposed
  EXPECT_EQ(dyn.stats().solver_runs, runs_before);
  EXPECT_EQ(dyn.stats().skipped_solves, 1u);
  EXPECT_EQ(dyn.cardinality(), 2);
}

TEST(DynamicMatchingUnit, BatchApplyAmortizesOneSolve) {
  Rng rng(61);
  const CooMatrix base = er_bipartite_m(20, 20, 50, rng);
  ChurnConfig churn;
  churn.updates = 10;
  churn.seed = 67;
  const std::vector<EdgeUpdate> updates = make_churn(base, churn);
  DynamicMatching dyn(make_config(4), base, {});
  const std::uint64_t runs_before = dyn.stats().solver_runs;
  dyn.apply(updates);
  EXPECT_LE(dyn.stats().solver_runs, runs_before + 1);
  EXPECT_EQ(dyn.cardinality(),
            oracle_cardinality(apply_edge_updates(base, updates)));
}

TEST(DynamicMatchingUnit, RejectsBatchFeaturesAndBadUpdates) {
  CooMatrix base(2, 2);
  base.add_edge(0, 0);
  {
    DynamicOptions options;
    options.mcm.checkpoint.dir = "/tmp/ckpt";
    EXPECT_THROW(DynamicMatching(make_config(1), base, options),
                 std::invalid_argument);
  }
  DynamicMatching dyn(make_config(1), base, {});
  EXPECT_THROW(dyn.apply(EdgeUpdate{UpdateKind::Insert, 2, 0}),
               std::out_of_range);
  EXPECT_THROW(dyn.apply(EdgeUpdate{UpdateKind::Delete, 0, 9}),
               std::out_of_range);
}

}  // namespace
}  // namespace mcm
