#include "core/mcm_dist.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/dist_maximal.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/msbfs_seq.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

struct Case {
  NamedGraph graph;
  int processes;
};

std::vector<Case> grid_cases() {
  std::vector<Case> cases;
  for (const auto& graph : small_corpus()) {
    for (const int p : {1, 4, 9, 16}) cases.push_back({graph, p});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.graph.name + "_p" + std::to_string(info.param.processes);
}

class McmDistCases : public ::testing::TestWithParam<Case> {};

TEST_P(McmDistCases, ColdStartIsCertifiedMaximum) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  McmDistStats stats;
  const Matching m =
      mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), {}, &stats);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_EQ(stats.final_cardinality, m.cardinality());
}

TEST_P(McmDistCases, WarmStartFromEveryDistInitializer) {
  const Case& c = GetParam();
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  const Index optimum = maximum_matching_size(a);
  for (const MaximalKind kind :
       {MaximalKind::Greedy, MaximalKind::KarpSipser,
        MaximalKind::DynMindegree}) {
    SimContext ctx = make_ctx(c.processes);
    const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
    const Matching init = dist_maximal_matching(ctx, dist, kind);
    const Matching m = mcm_dist(ctx, dist, init);
    EXPECT_EQ(m.cardinality(), optimum)
        << c.graph.name << " with " << maximal_kind_name(kind);
    EXPECT_TRUE(verify_valid(a, m));
  }
}

TEST_P(McmDistCases, MatchesSequentialMsBfsExactly) {
  // Same semiring, same keep-first rules: the distributed run must produce
  // the *identical* matching as the sequential reference, for every grid.
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  McmDistOptions options;
  options.augment = AugmentMode::LevelParallel;
  const Matching distributed =
      mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), options);
  const Matching sequential =
      msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()));
  EXPECT_EQ(distributed, sequential);
}

INSTANTIATE_TEST_SUITE_P(Sweep, McmDistCases,
                         ::testing::ValuesIn(grid_cases()), case_name);

class McmDistOptionsSweep : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(McmDistOptionsSweep, AllSemiringsReachOptimum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index optimum = maximum_matching_size(a);
  for (const SemiringKind kind :
       {SemiringKind::MinParent, SemiringKind::MaxParent,
        SemiringKind::RandParent, SemiringKind::RandRoot}) {
    SimContext ctx = make_ctx(9);
    const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
    McmDistOptions options;
    options.semiring = kind;
    options.seed = 2024;
    const Matching m =
        mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), options);
    EXPECT_EQ(m.cardinality(), optimum);
  }
}

TEST_P(McmDistOptionsSweep, BothAugmentKernelsReachOptimum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index optimum = maximum_matching_size(a);
  for (const AugmentMode mode :
       {AugmentMode::LevelParallel, AugmentMode::PathParallel,
        AugmentMode::Auto}) {
    SimContext ctx = make_ctx(4);
    const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
    McmDistOptions options;
    options.augment = mode;
    const Matching m =
        mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), options);
    EXPECT_EQ(m.cardinality(), optimum);
    EXPECT_TRUE(verify_valid(a, m));
  }
}

TEST_P(McmDistOptionsSweep, PruneOnOffSameCardinality) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  Index cards[2];
  double prune_time[2];
  int i = 0;
  for (const bool prune : {true, false}) {
    SimContext ctx = make_ctx(9);
    const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
    McmDistOptions options;
    options.enable_prune = prune;
    cards[i] = mcm_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), options)
                   .cardinality();
    prune_time[i] = ctx.ledger().time_us(Cost::Prune);
    ++i;
  }
  EXPECT_EQ(cards[0], cards[1]);
  EXPECT_DOUBLE_EQ(prune_time[1], 0.0);  // prune disabled charges nothing
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, McmDistOptionsSweep, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

class McmDistMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(McmDistMedium, FullPipelineOnMediumInstances) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  SimContext ctx = make_ctx(16);
  const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
  const Matching init =
      dist_maximal_matching(ctx, dist, MaximalKind::DynMindegree);
  McmDistStats stats;
  const Matching m = mcm_dist(ctx, dist, init, {}, &stats);
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_EQ(stats.initial_cardinality, init.cardinality());
  EXPECT_EQ(stats.augmentations,
            stats.final_cardinality - stats.initial_cardinality);
  if (unmatched_cols(init) > 0) {
    // At least one BFS phase ran, so SpMV time must have been charged. (When
    // the initializer already matched every column, MCM exits before any
    // SpMV — e.g. tall rectangular instances whose columns all match.)
    EXPECT_GT(ctx.ledger().time_us(Cost::SpMV), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Medium, McmDistMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(McmDist, MismatchedInitialThrows) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(3, 3);
  coo.add_edge(0, 0);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  EXPECT_THROW(mcm_dist(ctx, dist, Matching(2, 2)), std::invalid_argument);
}

TEST(McmDist, AlreadyMaximumInputNeedsNoAugmentation) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 1);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  Matching perfect(2, 2);
  perfect.match(0, 0);
  perfect.match(1, 1);
  McmDistStats stats;
  const Matching m = mcm_dist(ctx, dist, perfect, {}, &stats);
  EXPECT_EQ(m, perfect);
  EXPECT_EQ(stats.phases, 0);
  EXPECT_EQ(stats.augmentations, 0);
}

TEST(McmDist, StatsTrackAugmentKernelChoice) {
  SimContext ctx = make_ctx(4);
  Rng rng(1);
  const CooMatrix coo = er_bipartite_m(60, 60, 200, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  McmDistOptions options;
  options.augment = AugmentMode::PathParallel;
  McmDistStats stats;
  (void)mcm_dist(ctx, dist, Matching(60, 60), options, &stats);
  EXPECT_EQ(stats.level_parallel_phases, 0);
  EXPECT_EQ(stats.path_parallel_phases, stats.phases);
}

}  // namespace
}  // namespace mcm
