#include "core/mcm_graft.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/dist_maximal.hpp"
#include "core/mcm_dist.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

struct Case {
  NamedGraph graph;
  int processes;
};

std::vector<Case> grid_cases() {
  std::vector<Case> cases;
  for (const auto& graph : small_corpus()) {
    for (const int p : {1, 4, 9, 16}) cases.push_back({graph, p});
  }
  return cases;
}

class McmGraftCases : public ::testing::TestWithParam<Case> {};

TEST_P(McmGraftCases, ColdStartIsCertifiedMaximum) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  McmGraftStats stats;
  const Matching m =
      mcm_graft_dist(ctx, dist, Matching(a.n_rows(), a.n_cols()), {}, &stats);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_EQ(stats.final_cardinality, m.cardinality());
  EXPECT_EQ(stats.augmentations, m.cardinality());
}

TEST_P(McmGraftCases, WarmStartReachesOptimum) {
  const Case& c = GetParam();
  SimContext ctx = make_ctx(c.processes);
  const DistMatrix dist = DistMatrix::distribute(ctx, c.graph.coo);
  const CscMatrix a = CscMatrix::from_coo(c.graph.coo);
  const Matching init =
      dist_maximal_matching(ctx, dist, MaximalKind::DynMindegree);
  const Matching m = mcm_graft_dist(ctx, dist, init);
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_TRUE(verify_valid(a, m));
}

TEST_P(McmGraftCases, AgreesWithMcmDistCardinality) {
  const Case& c = GetParam();
  SimContext ctx1 = make_ctx(c.processes);
  SimContext ctx2 = make_ctx(c.processes);
  const DistMatrix d1 = DistMatrix::distribute(ctx1, c.graph.coo);
  const DistMatrix d2 = DistMatrix::distribute(ctx2, c.graph.coo);
  const Matching empty(c.graph.coo.n_rows, c.graph.coo.n_cols);
  EXPECT_EQ(mcm_graft_dist(ctx1, d1, empty).cardinality(),
            mcm_dist(ctx2, d2, empty).cardinality());
}

INSTANTIATE_TEST_SUITE_P(Sweep, McmGraftCases,
                         ::testing::ValuesIn(grid_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.graph.name + "_p"
                                  + std::to_string(info.param.processes);
                         });

class McmGraftMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(McmGraftMedium, OptimalOnMediumInstances) {
  SimContext ctx = make_ctx(16);
  const DistMatrix dist = DistMatrix::distribute(ctx, GetParam().coo);
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching init =
      dist_maximal_matching(ctx, dist, MaximalKind::DynMindegree);
  McmGraftStats stats;
  const Matching m = mcm_graft_dist(ctx, dist, init, {}, &stats);
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_EQ(stats.augmentations,
            stats.final_cardinality - stats.initial_cardinality);
}

INSTANTIATE_TEST_SUITE_P(
    Medium, McmGraftMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(McmGraft, GraftingEngagesOnWarmStartChain) {
  // The warm-start chain from the sequential grafting test: few trees die
  // per phase, so grafting (not rebuilding) must carry the forest across.
  const Index n = 400;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add_edge(i, i);
  for (Index i = 0; i + 1 < n; ++i) coo.add_edge(i, i + 1);
  Matching init(n, n);
  init.match(0, 0);
  for (Index i = 4; i + 1 < n; ++i) init.match(i, i + 1);
  SimContext ctx = make_ctx(4);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  McmGraftStats stats;
  const Matching m = mcm_graft_dist(ctx, dist, init, {}, &stats);
  EXPECT_EQ(m.cardinality(), n);
  EXPECT_GE(stats.phases, 1);
}

TEST(McmGraft, MismatchedInitialThrows) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(3, 3);
  coo.add_edge(0, 0);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  EXPECT_THROW((void)mcm_graft_dist(ctx, dist, Matching(2, 2)),
               std::invalid_argument);
}

TEST(McmGraft, AlreadyMaximumInputNoPhases) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 1);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  Matching perfect(2, 2);
  perfect.match(0, 0);
  perfect.match(1, 1);
  McmGraftStats stats;
  EXPECT_EQ(mcm_graft_dist(ctx, dist, perfect, {}, &stats), perfect);
  EXPECT_EQ(stats.phases, 0);
}

}  // namespace
}  // namespace mcm
