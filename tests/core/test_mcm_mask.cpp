/// Masked/unmasked equivalence suite (DESIGN.md §5.4): the visited-masked
/// SpMV is an optimization, not an algorithm change, so the final matching
/// must be BIT-IDENTICAL with the mask on or off — across semirings,
/// directions, prune settings, grid sizes and host thread counts. The RMAT
/// fixture additionally pins down the ledger win: fold words in the SpMV
/// category strictly lower with the mask on, and simulated SpMV+Other time
/// (which absorbs the bitmap replication overhead) no larger.

#include "core/mcm_dist.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../test_helpers.hpp"
#include "core/dist_maximal.hpp"
#include "gen/rmat.hpp"
#include "matching/verify.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes, int host_threads = 1) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.host_threads = host_threads;
  return SimContext(config);
}

Matching run_mcm(const CooMatrix& coo, const McmDistOptions& options,
                 int processes, int host_threads = 1) {
  SimContext ctx = make_ctx(processes, host_threads);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  return mcm_dist(ctx, dist, Matching(coo.n_rows, coo.n_cols), options);
}

class McmMaskCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(McmMaskCorpus, BitIdenticalAcrossSemiringsDirectionsPrune) {
  const CooMatrix& coo = GetParam().coo;
  for (const SemiringKind semiring :
       {SemiringKind::MinParent, SemiringKind::MaxParent,
        SemiringKind::RandParent, SemiringKind::RandRoot}) {
    for (const Direction direction :
         {Direction::TopDown, Direction::Optimizing}) {
      if (direction == Direction::Optimizing
          && semiring != SemiringKind::MinParent) {
        continue;  // optimizing only ever switches for minParent
      }
      for (const bool prune : {true, false}) {
        McmDistOptions options;
        options.semiring = semiring;
        options.direction = direction;
        options.enable_prune = prune;
        options.seed = 99;
        options.use_mask = true;
        const Matching masked = run_mcm(coo, options, 4);
        options.use_mask = false;
        const Matching unmasked = run_mcm(coo, options, 4);
        EXPECT_EQ(masked, unmasked)
            << GetParam().name << " semiring " << static_cast<int>(semiring)
            << " direction " << static_cast<int>(direction) << " prune "
            << prune;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, McmMaskCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(McmMask, BitIdenticalAcrossGridsAndHostThreads) {
  Rng rng(51);
  const CooMatrix coo = rmat(RmatParams::g500(10), rng);
  McmDistOptions options;
  options.use_mask = false;
  const Matching reference = run_mcm(coo, options, 1);
  options.use_mask = true;
  for (const int p : {1, 4, 16}) {
    for (const int threads : {1, 4}) {
      EXPECT_EQ(run_mcm(coo, options, p, threads), reference)
          << "p=" << p << " host_threads=" << threads;
    }
  }
}

TEST(McmMask, PureBottomUpIgnoresTheMaskEntirely) {
  // Bottom-up never consults the replica, so use_mask must not change the
  // result OR the ledger (no bitmap replication charged).
  Rng rng(53);
  const CooMatrix coo = rmat(RmatParams::g500(9), rng);
  McmDistOptions options;
  options.direction = Direction::BottomUp;
  double time_other[2];
  Matching results[2];
  int i = 0;
  for (const bool mask : {true, false}) {
    SimContext ctx = make_ctx(4);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    options.use_mask = mask;
    results[i] = mcm_dist(ctx, dist, Matching(coo.n_rows, coo.n_cols), options);
    time_other[i] = ctx.ledger().time_us(Cost::Other);
    ++i;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_DOUBLE_EQ(time_other[0], time_other[1]);
}

/// The ISSUE's RMAT fixture: g500 scale-16, edge factor 8, cold start on a
/// 4x4 grid — the first BFS iteration's frontier is every column (dense),
/// and later iterations re-reach most discovered rows, so the masked fold
/// must move strictly fewer words.
TEST(McmMask, RmatScale16MaskSavesFoldWordsAndSimulatedTime) {
  Rng rng(7);
  RmatParams params = RmatParams::g500(16);
  params.edge_factor = 8.0;
  const CooMatrix coo = rmat(params, rng);

  std::uint64_t spmv_words[2];
  double spmv_other_us[2];
  Matching results[2];
  int i = 0;
  for (const bool mask : {true, false}) {
    SimContext ctx = make_ctx(16);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    McmDistOptions options;
    options.use_mask = mask;
    results[i] = mcm_dist(ctx, dist, Matching(coo.n_rows, coo.n_cols), options);
    spmv_words[i] = ctx.ledger().words(Cost::SpMV);
    spmv_other_us[i] =
        ctx.ledger().time_us(Cost::SpMV) + ctx.ledger().time_us(Cost::Other);
    ++i;
  }
  EXPECT_EQ(results[0], results[1]);  // same matching, bit for bit
  // The point of the mask: masked rows never enter the fold, so the SpMV
  // category moves strictly fewer words...
  EXPECT_LT(spmv_words[0], spmv_words[1]);
  // ...and the simulated win survives the bitmap replication overhead
  // (charged to Other): masked SpMV+Other must not be slower in total.
  EXPECT_LE(spmv_other_us[0], spmv_other_us[1]);
}

TEST(McmMask, WarmStartFromInitializerStaysBitIdentical) {
  Rng rng(57);
  const CooMatrix coo = rmat(RmatParams::g500(10), rng);
  Matching results[2];
  int i = 0;
  for (const bool mask : {true, false}) {
    SimContext ctx = make_ctx(9);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    const Matching init =
        dist_maximal_matching(ctx, dist, MaximalKind::KarpSipser);
    McmDistOptions options;
    options.use_mask = mask;
    results[i] = mcm_dist(ctx, dist, init, options);
    ++i;
  }
  EXPECT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace mcm
