/// McmDistStepper / PipelineRun equivalence: the superstep-stepping API must
/// perform the identical statement sequence as the run-to-completion calls,
/// so matchings, stats and every ledger category (times bit-for-bit,
/// message/word counts exactly) agree — including when several steppers are
/// interleaved on independent contexts. The broader service-level version of
/// this property (policies x grids x lane counts) lives in
/// tests/service/test_service_equivalence.cpp; this file pins the core API.

#include "core/mcm_dist.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "core/dist_maximal.hpp"
#include "core/driver.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

void expect_ledgers_identical(const CostLedger& got, const CostLedger& want,
                              const std::string& label) {
  for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
    const auto category = static_cast<Cost>(c);
    EXPECT_EQ(got.time_us(category), want.time_us(category))
        << label << ": time_us differs in category " << c;
    EXPECT_EQ(got.messages(category), want.messages(category))
        << label << ": messages differ in category " << c;
    EXPECT_EQ(got.words(category), want.words(category))
        << label << ": words differ in category " << c;
  }
}

void expect_stats_identical(const McmDistStats& got, const McmDistStats& want,
                            const std::string& label) {
  EXPECT_EQ(got.phases, want.phases) << label;
  EXPECT_EQ(got.iterations, want.iterations) << label;
  EXPECT_EQ(got.bottom_up_iterations, want.bottom_up_iterations) << label;
  EXPECT_EQ(got.augmentations, want.augmentations) << label;
  EXPECT_EQ(got.path_parallel_phases, want.path_parallel_phases) << label;
  EXPECT_EQ(got.level_parallel_phases, want.level_parallel_phases) << label;
  EXPECT_EQ(got.initial_cardinality, want.initial_cardinality) << label;
  EXPECT_EQ(got.final_cardinality, want.final_cardinality) << label;
}

TEST(McmDistStepper, SteppingToCompletionEqualsMcmDist) {
  for (const NamedGraph& g : small_corpus()) {
    for (const int p : {1, 4, 16}) {
      SimContext ref_ctx = make_ctx(p);
      const DistMatrix ref_dist = DistMatrix::distribute(ref_ctx, g.coo);
      McmDistStats ref_stats;
      const Matching want = mcm_dist(ref_ctx, ref_dist,
                                     Matching(g.coo.n_rows, g.coo.n_cols), {},
                                     &ref_stats);

      SimContext ctx = make_ctx(p);
      const DistMatrix dist = DistMatrix::distribute(ctx, g.coo);
      McmDistStats stats;
      McmDistStepper stepper(ctx, dist, Matching(g.coo.n_rows, g.coo.n_cols),
                             {}, &stats);
      EXPECT_FALSE(stepper.done());
      std::uint64_t steps = 0;
      while (stepper.step()) ++steps;
      EXPECT_TRUE(stepper.done());
      EXPECT_FALSE(stepper.step());  // idempotent once done

      const std::string label = g.name + " p=" + std::to_string(p);
      EXPECT_EQ(stepper.take_result(), want) << label;
      expect_stats_identical(stats, ref_stats, label);
      expect_ledgers_identical(ctx.ledger(), ref_ctx.ledger(), label);
      // Every boundary ticks the superstep clock exactly once: each BFS
      // iteration plus each phase's terminating empty-frontier probe.
      EXPECT_EQ(stepper.supersteps(),
                static_cast<std::uint64_t>(stats.iterations + stats.phases + 1))
          << label;
      EXPECT_EQ(stepper.supersteps(), steps + 1) << label;
      EXPECT_EQ(stepper.frontier_nnz(), 0) << label;
    }
  }
}

TEST(McmDistStepper, FrontierNnzBeforeFirstStepIsUnmatchedColumns) {
  const NamedGraph g = small_corpus()[4];  // er_dense_20x20
  SimContext ctx = make_ctx(4);
  const DistMatrix dist = DistMatrix::distribute(ctx, g.coo);
  const Matching init = dist_maximal_matching(ctx, dist, MaximalKind::Greedy);
  McmDistStepper stepper(ctx, dist, init);
  EXPECT_EQ(stepper.frontier_nnz(), g.coo.n_cols - init.cardinality());
}

TEST(McmDistStepper, RoundRobinInterleavingMatchesStandaloneRuns) {
  // Many steppers advancing in lockstep on independent contexts: each must
  // be completely unaffected by the others running between its boundaries.
  const std::vector<NamedGraph> corpus = small_corpus();
  struct Run {
    const NamedGraph* graph;
    std::unique_ptr<SimContext> ctx;
    std::unique_ptr<DistMatrix> dist;
    std::unique_ptr<McmDistStepper> stepper;
    McmDistStats stats;
  };
  std::vector<Run> runs(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    Run& r = runs[i];  // built in place: the stepper keeps &r.stats
    r.graph = &corpus[i];
    r.ctx = std::make_unique<SimContext>(make_ctx(4));
    r.dist = std::make_unique<DistMatrix>(
        DistMatrix::distribute(*r.ctx, r.graph->coo));
    r.stepper = std::make_unique<McmDistStepper>(
        *r.ctx, *r.dist, Matching(r.graph->coo.n_rows, r.graph->coo.n_cols),
        McmDistOptions{}, &r.stats);
  }
  bool any = true;
  while (any) {
    any = false;
    for (Run& r : runs) any = r.stepper->step() || any;
  }

  for (Run& r : runs) {
    SimContext ref_ctx = make_ctx(4);
    const DistMatrix ref_dist = DistMatrix::distribute(ref_ctx, r.graph->coo);
    McmDistStats ref_stats;
    const Matching want =
        mcm_dist(ref_ctx, ref_dist,
                 Matching(r.graph->coo.n_rows, r.graph->coo.n_cols), {},
                 &ref_stats);
    EXPECT_EQ(r.stepper->take_result(), want) << r.graph->name;
    expect_stats_identical(r.stats, ref_stats, r.graph->name);
    expect_ledgers_identical(r.ctx->ledger(), ref_ctx.ledger(), r.graph->name);
  }
}

TEST(PipelineRun, SteppingToCompletionEqualsRunPipeline) {
  for (const NamedGraph& g : small_corpus()) {
    SimConfig config;
    config.cores = 4;
    config.threads_per_process = 1;
    const PipelineResult want = run_pipeline(config, g.coo);

    PipelineRun run(config, g.coo);
    EXPECT_FALSE(run.done());
    while (run.step()) {
    }
    EXPECT_TRUE(run.done());
    EXPECT_FALSE(run.step());
    const PipelineResult got = run.take_result();

    EXPECT_EQ(got.matching, want.matching) << g.name;
    EXPECT_EQ(got.init_seconds, want.init_seconds) << g.name;
    EXPECT_EQ(got.mcm_seconds, want.mcm_seconds) << g.name;
    expect_stats_identical(got.mcm_stats, want.mcm_stats, g.name);
    expect_ledgers_identical(got.ledger, want.ledger, g.name);
  }
}

TEST(PipelineRun, SharedEngineAndRebindKeepResultsIdentical) {
  // Host-engine choice is host-side only: constructing on a shared engine
  // and rebinding to another engine mid-run must not move a single charge.
  const NamedGraph g = small_corpus()[3];  // er_sparse_30x30
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  const PipelineResult want = run_pipeline(config, g.coo);

  auto first = std::make_shared<HostEngine>(2);
  auto second = std::make_shared<HostEngine>(3);
  PipelineRun run(config, g.coo, {}, first);
  int steps = 0;
  while (run.step()) {
    if (++steps == 2) run.set_host_engine(second);
  }
  const PipelineResult got = run.take_result();
  EXPECT_EQ(got.matching, want.matching);
  expect_ledgers_identical(got.ledger, want.ledger, g.name);
  // Both engines actually executed loops for this run.
  EXPECT_GT(first->lane_stats().loops, 0u);
  EXPECT_GT(second->lane_stats().loops, 0u);
}

}  // namespace
}  // namespace mcm
