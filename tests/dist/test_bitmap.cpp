/// VisitedBitmap unit tests: segment shaping, incremental update + ledger
/// charging (min(delta, packed words) rule), the stale-replica conservation
/// assert, and the end-to-end equivalence masked dist_spmv == unmasked
/// dist_spmv with the bitmap's rows dropped afterwards (DESIGN.md §5.4).

#include "dist/dist_bitmap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algebra/semiring.hpp"
#include "dist/dist_spmv.hpp"
#include "gen/er.hpp"
#include "matrix/csc.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

SpVec<Vertex> frontier_of(Index len, const std::vector<Index>& indices) {
  SpVec<Vertex> f(len);
  for (const Index i : indices) f.push_back(i, Vertex(i, i));
  return f;
}

/// True iff the bitmap has exactly the bits of `indices` set (checked
/// against every position of the layout).
void expect_bits(const VisitedBitmap& bitmap, const VecLayout& layout,
                 const std::vector<Index>& indices) {
  std::vector<bool> expected(static_cast<std::size_t>(layout.length()), false);
  for (const Index i : indices) expected[static_cast<std::size_t>(i)] = true;
  for (Index g = 0; g < layout.length(); ++g) {
    const int s = layout.dist().segments.owner(g);
    const Index local = layout.dist().segments.to_local(g);
    EXPECT_EQ(bitmap.test(s, local), expected[static_cast<std::size_t>(g)])
        << "global row " << g;
  }
}

class BitmapGrids : public ::testing::TestWithParam<int> {};

TEST_P(BitmapGrids, CtorBuildsClearedSegmentBitmaps) {
  SimContext ctx = make_ctx(GetParam());
  DistSpVec<Vertex> x(ctx, VSpace::Row, 97);
  const VisitedBitmap bitmap(x.layout());
  ASSERT_GT(bitmap.segments(), 0);
  std::uint64_t set = 0;
  for (int s = 0; s < bitmap.segments(); ++s) set += bitmap.set_bits(s);
  EXPECT_EQ(set, 0u);
  expect_bits(bitmap, x.layout(), {});
}

TEST_P(BitmapGrids, UpdateSetsExactlyTheFrontierBits) {
  SimContext ctx = make_ctx(GetParam());
  const Index n = 83;
  DistSpVec<Vertex> f(ctx, VSpace::Row, n);
  f.from_global(frontier_of(n, {0, 7, 31, 32, 64, 82}));
  VisitedBitmap bitmap(f.layout());
  bitmap.update(ctx, Cost::Other, {&f});
  expect_bits(bitmap, f.layout(), {0, 7, 31, 32, 64, 82});
  std::uint64_t set = 0;
  for (int s = 0; s < bitmap.segments(); ++s) set += bitmap.set_bits(s);
  EXPECT_EQ(set, 6u);

  // Disjoint second frontier accumulates; clear() resets.
  DistSpVec<Vertex> g(ctx, VSpace::Row, n);
  g.from_global(frontier_of(n, {1, 33}));
  bitmap.update(ctx, Cost::Other, {&g});
  expect_bits(bitmap, f.layout(), {0, 1, 7, 31, 32, 33, 64, 82});
  bitmap.clear();
  expect_bits(bitmap, f.layout(), {});
}

TEST_P(BitmapGrids, UpdateMergesMultipleVectorsAtOnce) {
  SimContext ctx = make_ctx(GetParam());
  const Index n = 60;
  DistSpVec<Vertex> a(ctx, VSpace::Row, n);
  a.from_global(frontier_of(n, {2, 40}));
  DistSpVec<Vertex> b(ctx, VSpace::Row, n);
  b.from_global(frontier_of(n, {3, 41, 59}));
  VisitedBitmap bitmap(a.layout());
  bitmap.update(ctx, Cost::Other, {&a, &b});
  expect_bits(bitmap, a.layout(), {2, 3, 40, 41, 59});
}

INSTANTIATE_TEST_SUITE_P(Grids, BitmapGrids, ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Bitmap, IncrementalChargeScalesWithDeltaNotBitmapSize) {
  // p=4 (2x2 grid): replication groups have 2 ranks, so the allgather
  // actually charges. A one-bit delta must cost fewer ledger words than a
  // dense delta over the same layout.
  SimContext ctx = make_ctx(4);
  const Index n = 600;  // segments of 300 rows = 5 packed words each
  DistSpVec<Vertex> dense(ctx, VSpace::Row, n);
  std::vector<Index> all;
  for (Index i = 0; i < n; ++i) all.push_back(i);
  dense.from_global(frontier_of(n, all));
  VisitedBitmap bitmap(dense.layout());

  bitmap.update(ctx, Cost::Other, {&dense});
  const std::uint64_t dense_words = ctx.ledger().words(Cost::Other);
  ASSERT_GT(dense_words, 0u);

  SimContext ctx2 = make_ctx(4);
  DistSpVec<Vertex> one(ctx2, VSpace::Row, n);
  one.from_global(frontier_of(n, {5}));
  VisitedBitmap bitmap2(one.layout());
  bitmap2.update(ctx2, Cost::Other, {&one});
  const std::uint64_t one_words = ctx2.ledger().words(Cost::Other);
  EXPECT_LT(one_words, dense_words);
}

TEST(Bitmap, ChargeIsCappedAtFullBitmapWords) {
  // Two deltas both denser than the packed bitmap charge the same: past
  // n/64 new bits the replica ships the whole bitmap instead of the list.
  const Index n = 600;
  auto charged_words = [&](Index stride) {
    SimContext ctx = make_ctx(4);
    DistSpVec<Vertex> f(ctx, VSpace::Row, n);
    std::vector<Index> indices;
    for (Index i = 0; i < n; i += stride) indices.push_back(i);
    f.from_global(frontier_of(n, indices));
    VisitedBitmap bitmap(f.layout());
    bitmap.update(ctx, Cost::Other, {&f});
    return ctx.ledger().words(Cost::Other);
  };
  EXPECT_EQ(charged_words(1), charged_words(2));  // both way past the cap
  EXPECT_LT(charged_words(150), charged_words(1));  // 2 bits/segment: sparse
}

/// Forces throw mode so the stale-replica conservation assert is active.
class BitmapCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!check::kCompiledIn) {
      GTEST_SKIP() << "mcmcheck compiled out (build with -DMCM_CHECK=ON)";
    }
    previous_ = check::mode();
    check::set_mode(CheckMode::Throw);
  }
  void TearDown() override {
    if (check::kCompiledIn) check::set_mode(previous_);
  }

 private:
  CheckMode previous_ = CheckMode::Off;
};

TEST_F(BitmapCheck, StaleReplicaTripsConservation) {
  SimContext ctx = make_ctx(4);
  const Index n = 50;
  DistSpVec<Vertex> f(ctx, VSpace::Row, n);
  f.from_global(frontier_of(n, {3, 17, 44}));
  VisitedBitmap bitmap(f.layout());
  bitmap.update(ctx, Cost::Other, {&f});
  // Re-applying the same frontier means every entry hits an already-set
  // bit: entries != newly-set bits, which is exactly the stale-replica
  // signature the conservation assert exists to catch.
  EXPECT_THROW(bitmap.update(ctx, Cost::Other, {&f}), CheckViolation);
}

TEST(Bitmap, MaskedSpmvRejectsMismatchedBitmap) {
  SimContext ctx = make_ctx(4);
  Rng rng(41);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(20, 20, 80, rng));
  SpVec<Vertex> x(20);
  x.push_back(0, Vertex(0, 0));
  DistSpVec<Vertex> dx(ctx, VSpace::Col, 20);
  dx.from_global(x);
  const VisitedBitmap empty;  // zero segments: not this grid's row space
  EXPECT_THROW(dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx,
                                    Select2ndMinParent{}, &empty),
               std::invalid_argument);
}

class BitmapSpmvGrids : public ::testing::TestWithParam<int> {};

TEST_P(BitmapSpmvGrids, MaskedSpmvEqualsUnmaskedWithVisitedDropped) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(43);
  for (int trial = 0; trial < 4; ++trial) {
    const Index n_rows = 47, n_cols = 39;
    const CooMatrix coo = er_bipartite_m(n_rows, n_cols, 320, rng);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    SpVec<Vertex> x(n_cols);
    for (Index j = 0; j < n_cols; ++j) {
      if (rng.next_bool(0.5)) x.push_back(j, Vertex(j, j));
    }
    DistSpVec<Vertex> dx(ctx, VSpace::Col, n_cols);
    dx.from_global(x);

    // Mark a random subset of rows visited, via the real update path.
    std::vector<Index> visited_rows;
    for (Index i = 0; i < n_rows; ++i) {
      if (rng.next_bool(0.4)) visited_rows.push_back(i);
    }
    DistSpVec<Vertex> vf(ctx, VSpace::Row, n_rows);
    vf.from_global(frontier_of(n_rows, visited_rows));
    VisitedBitmap bitmap(vf.layout());
    bitmap.update(ctx, Cost::Other, {&vf});

    const SpVec<Vertex> unmasked =
        dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{})
            .to_global();
    const SpVec<Vertex> masked =
        dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{},
                             &bitmap)
            .to_global();

    SpVec<Vertex> expected(n_rows);
    std::vector<bool> is_visited(static_cast<std::size_t>(n_rows), false);
    for (const Index i : visited_rows) {
      is_visited[static_cast<std::size_t>(i)] = true;
    }
    for (Index k = 0; k < unmasked.nnz(); ++k) {
      if (!is_visited[static_cast<std::size_t>(unmasked.index_at(k))]) {
        expected.push_back(unmasked.index_at(k), unmasked.value_at(k));
      }
    }
    EXPECT_EQ(masked, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, BitmapSpmvGrids,
                         ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcm
