#include "dist/dist_bottomup.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "algebra/semiring.hpp"
#include "dist/dist_primitives.hpp"
#include "dist/dist_spmv.hpp"
#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

/// Reference: top-down SpMV over minParent followed by the keep-unvisited
/// SELECT — the exact pipeline position the bottom-up step replaces.
DistSpVec<Vertex> top_down_reference(SimContext& ctx, const DistMatrix& a,
                                     const DistSpVec<Vertex>& f_c,
                                     const DistDenseVec<Index>& pi_r) {
  DistSpVec<Vertex> f_r =
      dist_spmv_col_to_row(ctx, Cost::SpMV, a, f_c, Select2ndMinParent{});
  return dist_select(ctx, Cost::Other, f_r, pi_r,
                     [](Index parent) { return parent == kNull; });
}

class BottomUpGrids : public ::testing::TestWithParam<int> {};

TEST_P(BottomUpGrids, MatchesTopDownExactly) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const CooMatrix coo = er_bipartite_m(50, 42, 320, rng);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);

    // Random frontier with (parent=self, random root) and random visited set.
    SpVec<Vertex> frontier(42);
    for (Index j = 0; j < 42; ++j) {
      if (rng.next_bool(0.5)) {
        frontier.push_back(j, Vertex(j, static_cast<Index>(rng.next_below(42))));
      }
    }
    DistSpVec<Vertex> f_c(ctx, VSpace::Col, 42);
    f_c.from_global(frontier);
    DistDenseVec<Index> pi_r(ctx, VSpace::Row, 50, kNull);
    for (Index i = 0; i < 50; ++i) {
      if (rng.next_bool(0.3)) pi_r.set(i, i);  // arbitrary visited marks
    }

    const DistSpVec<Vertex> expected = top_down_reference(ctx, dist, f_c, pi_r);
    const DistSpVec<Vertex> got =
        dist_bottom_up_step(ctx, Cost::SpMV, dist, f_c, pi_r);
    EXPECT_EQ(got.to_global(), expected.to_global()) << "trial " << trial;
  }
}

TEST_P(BottomUpGrids, EmptyFrontierFindsNothing) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(9);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(20, 20, 80, rng));
  DistSpVec<Vertex> f_c(ctx, VSpace::Col, 20);
  DistDenseVec<Index> pi_r(ctx, VSpace::Row, 20, kNull);
  EXPECT_EQ(dist_bottom_up_step(ctx, Cost::SpMV, dist, f_c, pi_r)
                .nnz_unaccounted(),
            0);
}

TEST_P(BottomUpGrids, AllVisitedFindsNothing) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(11);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(20, 20, 120, rng));
  SpVec<Vertex> frontier(20);
  for (Index j = 0; j < 20; ++j) frontier.push_back(j, Vertex(j, j));
  DistSpVec<Vertex> f_c(ctx, VSpace::Col, 20);
  f_c.from_global(frontier);
  DistDenseVec<Index> pi_r(ctx, VSpace::Row, 20, Index{0});  // all visited
  EXPECT_EQ(dist_bottom_up_step(ctx, Cost::SpMV, dist, f_c, pi_r)
                .nnz_unaccounted(),
            0);
}

INSTANTIATE_TEST_SUITE_P(Grids, BottomUpGrids, ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(BottomUp, MisalignedOperandsThrow) {
  SimContext ctx = make_ctx(4);
  Rng rng(13);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(10, 12, 40, rng));
  DistSpVec<Vertex> wrong_space(ctx, VSpace::Row, 12);
  DistDenseVec<Index> pi(ctx, VSpace::Row, 10, kNull);
  EXPECT_THROW(
      (void)dist_bottom_up_step(ctx, Cost::SpMV, dist, wrong_space, pi),
      std::invalid_argument);
  DistSpVec<Vertex> f_c(ctx, VSpace::Col, 12);
  DistDenseVec<Index> wrong_pi(ctx, VSpace::Col, 12, kNull);
  EXPECT_THROW(
      (void)dist_bottom_up_step(ctx, Cost::SpMV, dist, f_c, wrong_pi),
      std::invalid_argument);
}

TEST(BottomUp, HeuristicSwitchesOnDenseFrontiers) {
  EXPECT_TRUE(bottom_up_beneficial(100, 100));
  EXPECT_TRUE(bottom_up_beneficial(13, 100));
  EXPECT_FALSE(bottom_up_beneficial(12, 100));
  EXPECT_FALSE(bottom_up_beneficial(0, 100));
}

}  // namespace
}  // namespace mcm
