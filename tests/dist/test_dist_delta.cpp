/// Distributed edge-delta application (dist/dist_delta.hpp): applying a
/// delta to the owner blocks must leave the DistMatrix indistinguishable
/// from a fresh distribution of the mutated graph — same blocks, same nnz —
/// for every grid size, while charging the scatter on Cost::GatherScatter
/// through the wire layer (raw >= sent under compressing formats).

#include "dist/dist_delta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "../test_helpers.hpp"
#include "gen/workload.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimContext make_ctx(int processes, WireFormat wire = WireFormat::Auto) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.wire = wire;
  return SimContext(config);
}

void expect_same_blocks(const DistMatrix& got, const DistMatrix& want,
                        const std::string& label) {
  ASSERT_EQ(got.nnz(), want.nnz()) << label;
  const ProcGrid& grid = got.grid();
  for (int i = 0; i < grid.pr(); ++i) {
    for (int j = 0; j < grid.pc(); ++j) {
      const check::RankScope scope(grid.rank_of(i, j), "test.compare");
      const CooMatrix a = got.block(i, j).to_coo();
      const CooMatrix b = want.block(i, j).to_coo();
      EXPECT_EQ(a.rows, b.rows) << label << " block (" << i << "," << j << ")";
      EXPECT_EQ(a.cols, b.cols) << label << " block (" << i << "," << j << ")";
      const CooMatrix at = got.block_t(i, j).to_coo();
      const CooMatrix bt = want.block_t(i, j).to_coo();
      EXPECT_EQ(at.rows, bt.rows) << label << " block_t";
      EXPECT_EQ(at.cols, bt.cols) << label << " block_t";
    }
  }
}

TEST(DistDelta, DeltaEqualsFreshDistributionOfMutatedGraph) {
  for (const NamedGraph& g : small_corpus()) {
    if (g.coo.n_rows < 2 || g.coo.n_cols < 2) continue;
    ChurnConfig churn;
    churn.updates = 24;
    churn.seed = 7;
    const std::vector<EdgeUpdate> updates = make_churn(g.coo, churn);
    for (const int p : {1, 4, 16}) {
      SimContext ctx = make_ctx(p);
      DistMatrix incremental = DistMatrix::distribute(ctx, g.coo);
      const DeltaApplyStats stats =
          dist_apply_edge_deltas(ctx, incremental, updates);
      EXPECT_EQ(stats.inserts + stats.deletes, updates.size());

      const CooMatrix mutated = apply_edge_updates(g.coo, updates);
      SimContext ref_ctx = make_ctx(p);
      const DistMatrix fresh = DistMatrix::distribute(ref_ctx, mutated);
      expect_same_blocks(incremental, fresh,
                         g.name + " p=" + std::to_string(p));
    }
  }
}

TEST(DistDelta, ChargesGatherScatterThroughTheWireLayer) {
  Rng rng(11);
  const CooMatrix base = er_bipartite_m(40, 40, 120, rng);
  ChurnConfig churn;
  churn.updates = 32;
  const std::vector<EdgeUpdate> updates = make_churn(base, churn);
  for (const WireFormat wire :
       {WireFormat::Raw, WireFormat::Varint, WireFormat::Auto}) {
    SimContext ctx = make_ctx(4, wire);
    DistMatrix a = DistMatrix::distribute(ctx, base);
    (void)dist_apply_edge_deltas(ctx, a, updates);
    const CostLedger& ledger = ctx.ledger();
    // The scatter is the only charge, on GatherScatter: 3 raw words/update.
    EXPECT_GT(ledger.time_us(Cost::GatherScatter), 0.0) << wire_name(wire);
    EXPECT_EQ(ledger.wire_raw(Cost::GatherScatter),
              3 * static_cast<std::uint64_t>(updates.size()))
        << wire_name(wire);
    EXPECT_LE(ledger.wire_sent(Cost::GatherScatter),
              ledger.wire_raw(Cost::GatherScatter))
        << wire_name(wire);
    for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
      const auto category = static_cast<Cost>(c);
      if (category == Cost::GatherScatter) continue;
      EXPECT_EQ(ledger.time_us(category), 0.0)
          << wire_name(wire) << " category " << c;
    }
  }
}

TEST(DistDelta, EmptyBatchIsFree) {
  SimContext ctx = make_ctx(4);
  DistMatrix a = DistMatrix::distribute(ctx, small_corpus()[3].coo);
  const Index nnz = a.nnz();
  const DeltaApplyStats stats = dist_apply_edge_deltas(ctx, a, {});
  EXPECT_EQ(stats.blocks_rebuilt, 0);
  EXPECT_EQ(a.nnz(), nnz);
  EXPECT_EQ(ctx.ledger().time_us(Cost::GatherScatter), 0.0);
}

TEST(DistDelta, DesyncedUpdateIsAHardError) {
  Rng rng(3);
  const CooMatrix base = er_bipartite_m(10, 10, 30, rng);
  SimContext ctx = make_ctx(4);
  DistMatrix a = DistMatrix::distribute(ctx, base);
  // Insert of an edge already present.
  EXPECT_THROW(dist_apply_edge_deltas(
                   ctx, a, {{UpdateKind::Insert, base.rows[0], base.cols[0]}}),
               std::logic_error);
  // Out-of-range endpoint.
  EXPECT_THROW(dist_apply_edge_deltas(ctx, a, {{UpdateKind::Insert, 10, 0}}),
               std::out_of_range);
}

TEST(DistDelta, ReplaceBlockRejectsWrongShape) {
  SimContext ctx = make_ctx(4);
  DistMatrix a = DistMatrix::distribute(ctx, CooMatrix(8, 8));
  const CooMatrix wrong(3, 3);
  EXPECT_THROW(a.replace_block(0, 0, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
