#include "dist/dist_mat.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

class DistMatGrids : public ::testing::TestWithParam<int> {};

TEST_P(DistMatGrids, BlocksReassembleToOriginal) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(5);
  CooMatrix original = er_bipartite_m(43, 37, 250, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, original);
  EXPECT_EQ(dist.nnz(), original.nnz());
  EXPECT_EQ(dist.n_rows(), 43);
  EXPECT_EQ(dist.n_cols(), 37);

  CooMatrix reassembled(43, 37);
  for (int i = 0; i < ctx.grid().pr(); ++i) {
    for (int j = 0; j < ctx.grid().pc(); ++j) {
      const CooMatrix blk = dist.block(i, j).to_coo();
      for (std::size_t k = 0; k < blk.rows.size(); ++k) {
        reassembled.add_edge(blk.rows[k] + dist.row_dist().offset(i),
                             blk.cols[k] + dist.col_dist().offset(j));
      }
    }
  }
  reassembled.sort_dedup();
  original.sort_dedup();
  EXPECT_EQ(reassembled.rows, original.rows);
  EXPECT_EQ(reassembled.cols, original.cols);
}

TEST_P(DistMatGrids, TransposedBlocksMatchBlocks) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(6);
  const CooMatrix original = er_bipartite_m(30, 50, 200, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, original);
  for (int i = 0; i < ctx.grid().pr(); ++i) {
    for (int j = 0; j < ctx.grid().pc(); ++j) {
      CooMatrix blk = dist.block(i, j).to_coo();
      CooMatrix blk_t = dist.block_t(i, j).to_coo().transposed();
      blk.sort_dedup();
      blk_t.sort_dedup();
      EXPECT_EQ(blk.rows, blk_t.rows) << "block (" << i << "," << j << ")";
      EXPECT_EQ(blk.cols, blk_t.cols);
    }
  }
}

TEST_P(DistMatGrids, BlockDimensionsMatchDistribution) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(7);
  const CooMatrix original = er_bipartite_m(29, 31, 100, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, original);
  for (int i = 0; i < ctx.grid().pr(); ++i) {
    for (int j = 0; j < ctx.grid().pc(); ++j) {
      EXPECT_EQ(dist.block(i, j).n_rows(), dist.row_dist().size(i));
      EXPECT_EQ(dist.block(i, j).n_cols(), dist.col_dist().size(j));
      EXPECT_EQ(dist.block_t(i, j).n_rows(), dist.col_dist().size(j));
      EXPECT_EQ(dist.block_t(i, j).n_cols(), dist.row_dist().size(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, DistMatGrids, ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Two-step append dodges a GCC 12 -Wrestrict
                           // false positive on const char* + string&&.
                           std::string name = "p";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(DistMat, MaxBlockNnzBoundsTotal) {
  SimContext ctx = make_ctx(4);
  Rng rng(8);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(40, 40, 400, rng));
  EXPECT_GE(dist.max_block_nnz() * 4, dist.nnz());
  EXPECT_LE(dist.max_block_nnz(), dist.nnz());
}

TEST(DistMat, InvalidMatrixRejected) {
  SimContext ctx = make_ctx(1);
  CooMatrix bad(2, 2);
  bad.add_edge(5, 0);
  EXPECT_THROW(DistMatrix::distribute(ctx, bad), std::out_of_range);
}

TEST(DistMat, EmptyMatrixDistributes) {
  SimContext ctx = make_ctx(9);
  const DistMatrix dist = DistMatrix::distribute(ctx, CooMatrix(5, 5));
  EXPECT_EQ(dist.nnz(), 0);
  EXPECT_EQ(dist.max_block_nnz(), 0);
}

}  // namespace
}  // namespace mcm
