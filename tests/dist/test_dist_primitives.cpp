#include "dist/dist_primitives.hpp"

#include <gtest/gtest.h>

#include "algebra/vertex.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

SpVec<Index> random_sparse(Index len, double density, Rng& rng) {
  SpVec<Index> x(len);
  for (Index i = 0; i < len; ++i) {
    if (rng.next_bool(density)) {
      x.push_back(i, static_cast<Index>(rng.next_below(
                         static_cast<std::uint64_t>(len))));
    }
  }
  return x;
}

std::vector<Index> random_dense(Index len, Rng& rng) {
  std::vector<Index> y(static_cast<std::size_t>(len));
  for (auto& v : y) {
    v = rng.next_bool(0.5) ? kNull
                           : static_cast<Index>(rng.next_below(100));
  }
  return y;
}

class DistPrimGrids : public ::testing::TestWithParam<int> {};

TEST_P(DistPrimGrids, SelectMatchesSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(1);
  const Index n = 57;
  const SpVec<Index> x = random_sparse(n, 0.4, rng);
  const std::vector<Index> y = random_dense(n, rng);

  DistSpVec<Index> dx(ctx, VSpace::Row, n);
  dx.from_global(x);
  DistDenseVec<Index> dy(ctx, VSpace::Row, n, kNull);
  dy.from_std(y);

  const auto pred = [](Index v) { return v == kNull; };
  const SpVec<Index> expected = select(x, y, pred);
  const DistSpVec<Index> got =
      dist_select(ctx, Cost::Other, dx, dy, pred);
  EXPECT_EQ(got.to_global(), expected);
}

TEST_P(DistPrimGrids, SetDenseMatchesSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(2);
  const Index n = 41;
  const SpVec<Index> x = random_sparse(n, 0.3, rng);
  std::vector<Index> y = random_dense(n, rng);

  DistSpVec<Index> dx(ctx, VSpace::Col, n);
  dx.from_global(x);
  DistDenseVec<Index> dy(ctx, VSpace::Col, n, kNull);
  dy.from_std(y);

  dist_set_dense(ctx, Cost::Other, dy, dx, [](Index v) { return v + 1; });
  set_dense(y, x, [](Index v) { return v + 1; });
  EXPECT_EQ(dy.to_std(), y);
}

TEST_P(DistPrimGrids, SetSparseMatchesSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(3);
  const Index n = 33;
  SpVec<Index> x = random_sparse(n, 0.5, rng);
  const std::vector<Index> y = random_dense(n, rng);

  DistSpVec<Index> dx(ctx, VSpace::Row, n);
  dx.from_global(x);
  DistDenseVec<Index> dy(ctx, VSpace::Row, n, kNull);
  dy.from_std(y);

  const auto update = [](Index& value, Index dense) { value = dense - 1; };
  dist_set_sparse(ctx, Cost::Other, dx, dy, update);
  set_sparse(x, y, update);
  EXPECT_EQ(dx.to_global(), x);
}

TEST_P(DistPrimGrids, InvertMatchesSequentialIncludingKeepFirst) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(4);
  const Index n_in = 48;
  const Index n_out = 52;
  // Values deliberately collide to exercise the keep-first rule.
  SpVec<Index> x(n_in);
  for (Index i = 0; i < n_in; ++i) {
    if (rng.next_bool(0.6)) {
      x.push_back(i, static_cast<Index>(rng.next_below(20)));
    }
  }
  DistSpVec<Index> dx(ctx, VSpace::Row, n_in);
  dx.from_global(x);

  const auto key = [](Index, Index v) { return v; };
  const auto payload = [](Index g, Index) { return g; };
  const SpVec<Index> expected = invert<Index>(x, n_out, key, payload);
  const DistSpVec<Index> got =
      dist_invert<Index>(ctx, Cost::Invert, dx, VSpace::Col, n_out, key, payload);
  EXPECT_EQ(got.to_global(), expected);
  if (ctx.processes() > 1) {
    EXPECT_GT(ctx.ledger().messages(Cost::Invert), 0u);
  }
}

TEST_P(DistPrimGrids, InvertVertexPayloads) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(5);
  const Index n = 30;
  SpVec<Vertex> x(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(0.5)) {
      x.push_back(i, Vertex(static_cast<Index>(rng.next_below(30)),
                            static_cast<Index>(rng.next_below(15))));
    }
  }
  DistSpVec<Vertex> dx(ctx, VSpace::Row, n);
  dx.from_global(x);
  const auto key = [](Index, const Vertex& v) { return v.root; };
  const auto payload = [](Index g, const Vertex&) { return g; };
  EXPECT_EQ((dist_invert<Index>(ctx, Cost::Invert, dx, VSpace::Col, n, key,
                                payload))
                .to_global(),
            (invert<Index>(x, n, key, payload)));
}

TEST_P(DistPrimGrids, PruneMatchesSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(6);
  const Index n = 44;
  const SpVec<Index> x = random_sparse(n, 0.5, rng);
  DistSpVec<Index> dx(ctx, VSpace::Row, n);
  dx.from_global(x);

  // Roots contributed from arbitrary ranks.
  std::vector<std::vector<Index>> roots_by_rank(
      static_cast<std::size_t>(ctx.processes()));
  std::vector<Index> all_roots;
  for (int i = 0; i < 10; ++i) {
    const Index root = static_cast<Index>(rng.next_below(44));
    roots_by_rank[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(ctx.processes())))]
        .push_back(root);
    all_roots.push_back(root);
  }
  const auto root_of = [](Index v) { return v; };
  const SpVec<Index> expected = prune(x, all_roots, root_of);
  const DistSpVec<Index> got =
      dist_prune(ctx, Cost::Prune, dx, roots_by_rank, root_of);
  EXPECT_EQ(got.to_global(), expected);
}

TEST_P(DistPrimGrids, FilterAndTransform) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(7);
  const Index n = 35;
  const SpVec<Index> x = random_sparse(n, 0.6, rng);
  DistSpVec<Index> dx(ctx, VSpace::Col, n);
  dx.from_global(x);

  const DistSpVec<Index> filtered = dist_filter(
      ctx, Cost::Other, dx, [](Index v) { return v % 2 == 0; });
  for (Index k = 0; k < filtered.to_global().nnz(); ++k) {
    EXPECT_EQ(filtered.to_global().value_at(k) % 2, 0);
  }

  const DistSpVec<Index> doubled = dist_transform<Index>(
      ctx, Cost::Other, dx, [](Index g, Index v) { return g + v; });
  const SpVec<Index> global = doubled.to_global();
  for (Index k = 0; k < global.nnz(); ++k) {
    EXPECT_EQ(global.value_at(k),
              global.index_at(k) + x.value_at(k));
  }
}

TEST_P(DistPrimGrids, FromDenseBuildsFrontier) {
  SimContext ctx = make_ctx(GetParam());
  const Index n = 26;
  DistDenseVec<Index> mate(ctx, VSpace::Col, n, kNull);
  mate.set(3, 10);
  mate.set(7, 11);
  const DistSpVec<Vertex> frontier = dist_from_dense<Vertex>(
      ctx, Cost::Other, mate, [](Index m) { return m == kNull; },
      [](Index g, Index) { return Vertex(g, g); });
  const SpVec<Vertex> global = frontier.to_global();
  EXPECT_EQ(global.nnz(), n - 2);
  for (Index k = 0; k < global.nnz(); ++k) {
    EXPECT_EQ(global.value_at(k).parent, global.index_at(k));
    EXPECT_EQ(global.value_at(k).root, global.index_at(k));
    EXPECT_NE(global.index_at(k), 3);
    EXPECT_NE(global.index_at(k), 7);
  }
}

TEST_P(DistPrimGrids, NnzChargesAllreduce) {
  SimContext ctx = make_ctx(GetParam());
  DistSpVec<Index> x(ctx, VSpace::Row, 10);
  SpVec<Index> g(10);
  g.push_back(2, 5);
  x.from_global(g);
  EXPECT_EQ(dist_nnz(ctx, Cost::Other, x), 1);
  if (ctx.processes() > 1) {
    EXPECT_GT(ctx.ledger().time_us(Cost::Other), 0);
  }
}

TEST_P(DistPrimGrids, FillResetsDense) {
  SimContext ctx = make_ctx(GetParam());
  DistDenseVec<Index> v(ctx, VSpace::Row, 19, Index{5});
  dist_fill(ctx, Cost::Other, v, kNull);
  EXPECT_EQ(v.to_std(), std::vector<Index>(19, kNull));
}

/// Random Vertex frontier in row space (parent/root pairs).
SpVec<Vertex> random_frontier(Index n, double density, Rng& rng) {
  SpVec<Vertex> f(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(density)) {
      f.push_back(i, Vertex(static_cast<Index>(rng.next_below(
                                static_cast<std::uint64_t>(n))),
                            static_cast<Index>(rng.next_below(
                                static_cast<std::uint64_t>(n)))));
    }
  }
  return f;
}

TEST_P(DistPrimGrids, PartitionFrontierMatchesUnfusedSteps) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(8);
  const Index n = 53;
  const SpVec<Vertex> f = random_frontier(n, 0.5, rng);
  const std::vector<Index> pi0 = random_dense(n, rng);
  const std::vector<Index> mate0 = random_dense(n, rng);

  DistSpVec<Vertex> df(ctx, VSpace::Row, n);
  df.from_global(f);
  DistDenseVec<Index> dpi(ctx, VSpace::Row, n, kNull);
  dpi.from_std(pi0);
  DistDenseVec<Index> dmate(ctx, VSpace::Row, n, kNull);
  dmate.from_std(mate0);

  const auto parent_of = [](const Vertex& v) { return v.parent; };
  const FrontierPartition<Vertex> part = dist_partition_frontier(
      ctx, Cost::Other, df, dpi, dmate, parent_of);

  // Reference: the three unfused steps over the global views.
  SpVec<Vertex> fresh =
      select(f, pi0, [](Index p) { return p == kNull; });
  std::vector<Index> pi_ref = pi0;
  set_dense(pi_ref, fresh, parent_of);
  const SpVec<Vertex> unmatched =
      select(fresh, mate0, [](Index m) { return m == kNull; });
  const SpVec<Vertex> matched =
      select(fresh, mate0, [](Index m) { return m != kNull; });

  EXPECT_EQ(part.matched.to_global(), matched);
  EXPECT_EQ(part.unmatched.to_global(), unmatched);
  EXPECT_EQ(dpi.to_std(), pi_ref);
  EXPECT_EQ(part.dropped,
            static_cast<std::uint64_t>(f.nnz() - fresh.nnz()));
}

TEST_P(DistPrimGrids, PartitionOnCleanStateDropsNothing) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(9);
  const Index n = 37;
  const SpVec<Vertex> f = random_frontier(n, 0.4, rng);
  DistSpVec<Vertex> df(ctx, VSpace::Row, n);
  df.from_global(f);
  DistDenseVec<Index> dpi(ctx, VSpace::Row, n, kNull);  // all unvisited
  DistDenseVec<Index> dmate(ctx, VSpace::Row, n, kNull);
  // expect_all_unvisited holds here, so the conservation assert must not
  // fire even in checked builds.
  const FrontierPartition<Vertex> part = dist_partition_frontier(
      ctx, Cost::Other, df, dpi, dmate,
      [](const Vertex& v) { return v.parent; },
      /*expect_all_unvisited=*/true);
  EXPECT_EQ(part.dropped, 0u);
  EXPECT_EQ(part.unmatched.to_global().nnz(), f.nnz());
  EXPECT_EQ(part.matched.to_global().nnz(), 0);
}

TEST_P(DistPrimGrids, PruneEndpointOverloadMatchesRootsByRank) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(10);
  const Index n = 49;
  SpVec<Vertex> x(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(0.5)) {
      x.push_back(i, Vertex(i, static_cast<Index>(rng.next_below(12))));
    }
  }
  const SpVec<Vertex> endpoints = [&] {
    SpVec<Vertex> e(n);
    for (Index k = 0; k < x.nnz(); k += 3) {
      e.push_back(x.index_at(k), x.value_at(k));
    }
    return e;
  }();

  DistSpVec<Vertex> dx(ctx, VSpace::Row, n);
  dx.from_global(x);
  DistSpVec<Vertex> de(ctx, VSpace::Row, n);
  de.from_global(endpoints);
  const auto root_of = [](const Vertex& v) { return v.root; };

  // Reference: the preexisting overload fed the per-rank root lists the
  // drivers used to collect by hand.
  std::vector<std::vector<Index>> roots_by_rank(
      static_cast<std::size_t>(ctx.processes()));
  for (int r = 0; r < ctx.processes(); ++r) {
    const auto& piece = de.piece(r);
    for (Index k = 0; k < piece.nnz(); ++k) {
      roots_by_rank[static_cast<std::size_t>(r)].push_back(
          root_of(piece.value_at(k)));
    }
  }
  const DistSpVec<Vertex> expected =
      dist_prune(ctx, Cost::Prune, dx, roots_by_rank, root_of);
  const DistSpVec<Vertex> got =
      dist_prune(ctx, Cost::Prune, dx, de, root_of);
  EXPECT_EQ(got.to_global(), expected.to_global());
}

INSTANTIATE_TEST_SUITE_P(Grids, DistPrimGrids, ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(DistPrimitives, MisalignedOperandsThrow) {
  SimContext ctx = make_ctx(4);
  DistSpVec<Index> x(ctx, VSpace::Row, 10);
  DistDenseVec<Index> y_col(ctx, VSpace::Col, 10, kNull);
  DistDenseVec<Index> y_short(ctx, VSpace::Row, 9, kNull);
  const auto pred = [](Index) { return true; };
  EXPECT_THROW(dist_select(ctx, Cost::Other, x, y_col, pred),
               std::invalid_argument);
  EXPECT_THROW(dist_select(ctx, Cost::Other, x, y_short, pred),
               std::invalid_argument);
}

TEST(DistPrimitives, InvertKeyOutOfRangeThrows) {
  SimContext ctx = make_ctx(4);
  DistSpVec<Index> x(ctx, VSpace::Row, 10);
  SpVec<Index> g(10);
  g.push_back(0, 99);
  x.from_global(g);
  EXPECT_THROW((dist_invert<Index>(
                   ctx, Cost::Invert, x, VSpace::Col, 10,
                   [](Index, Index v) { return v; },
                   [](Index i, Index) { return i; })),
               std::out_of_range);
}

}  // namespace
}  // namespace mcm
