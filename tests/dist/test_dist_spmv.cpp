#include "dist/dist_spmv.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "algebra/semiring.hpp"
#include "gen/er.hpp"
#include "matrix/csc.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

SpVec<Vertex> random_frontier(Index len, double density, Rng& rng) {
  SpVec<Vertex> x(len);
  for (Index j = 0; j < len; ++j) {
    if (rng.next_bool(density)) {
      x.push_back(j, Vertex(j, static_cast<Index>(rng.next_below(
                                   static_cast<std::uint64_t>(len)))));
    }
  }
  return x;
}

class DistSpmvGrids : public ::testing::TestWithParam<int> {};

TEST_P(DistSpmvGrids, ColToRowMatchesSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const CooMatrix coo = er_bipartite_m(45, 38, 300, rng);
    const CscMatrix seq = CscMatrix::from_coo(coo);
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    const SpVec<Vertex> x = random_frontier(38, 0.4, rng);
    DistSpVec<Vertex> dx(ctx, VSpace::Col, 38);
    dx.from_global(x);

    const SpVec<Vertex> expected = spmv(seq, x, Select2ndMinParent{});
    const DistSpVec<Vertex> got =
        dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{});
    EXPECT_EQ(got.to_global(), expected) << "trial " << trial;
  }
}

TEST_P(DistSpmvGrids, RowToColMatchesSequentialTranspose) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(13);
  const CooMatrix coo = er_bipartite_m(36, 44, 280, rng);
  const CscMatrix seq_t = CscMatrix::from_coo(coo.transposed());
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  const SpVec<Vertex> x = random_frontier(36, 0.5, rng);
  DistSpVec<Vertex> dx(ctx, VSpace::Row, 36);
  dx.from_global(x);

  const SpVec<Vertex> expected = spmv(seq_t, x, Select2ndMinParent{});
  const DistSpVec<Vertex> got =
      dist_spmv_row_to_col(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{});
  EXPECT_EQ(got.to_global(), expected);
}

TEST_P(DistSpmvGrids, AllSemiringsAgreeWithSequential) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(17);
  const CooMatrix coo = er_bipartite_m(30, 30, 200, rng);
  const CscMatrix seq = CscMatrix::from_coo(coo);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  const SpVec<Vertex> x = random_frontier(30, 0.6, rng);
  DistSpVec<Vertex> dx(ctx, VSpace::Col, 30);
  dx.from_global(x);

  const Select2ndRandRoot rand_root{5};
  const Select2ndRandParent rand_parent{6};
  EXPECT_EQ(
      dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMaxParent{})
          .to_global(),
      spmv(seq, x, Select2ndMaxParent{}));
  EXPECT_EQ(
      dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, rand_root).to_global(),
      spmv(seq, x, rand_root));
  EXPECT_EQ(
      dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, rand_parent).to_global(),
      spmv(seq, x, rand_parent));
}

TEST_P(DistSpmvGrids, CountingSemiringComputesDegrees) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(19);
  const CooMatrix coo = er_bipartite_m(25, 31, 180, rng);
  const CscMatrix seq_t = CscMatrix::from_coo(coo.transposed());
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  SpVec<Index> ones(25);
  for (Index i = 0; i < 25; ++i) ones.push_back(i, 1);
  DistSpVec<Index> dx(ctx, VSpace::Row, 25);
  dx.from_global(ones);
  EXPECT_EQ(
      dist_spmv_row_to_col(ctx, Cost::SpMV, dist, dx, PlusCount{}).to_global(),
      spmv(seq_t, ones, PlusCount{}));
}

TEST_P(DistSpmvGrids, EmptyFrontierYieldsEmpty) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(23);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(20, 20, 60, rng));
  DistSpVec<Vertex> dx(ctx, VSpace::Col, 20);
  const auto y =
      dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{});
  EXPECT_EQ(y.nnz_unaccounted(), 0);
}

TEST_P(DistSpmvGrids, ChargesSpmvCategory) {
  SimContext ctx = make_ctx(GetParam());
  Rng rng(29);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(30, 30, 300, rng));
  SpVec<Vertex> x(30);
  for (Index j = 0; j < 30; ++j) x.push_back(j, Vertex(j, j));
  DistSpVec<Vertex> dx(ctx, VSpace::Col, 30);
  dx.from_global(x);
  (void)dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{});
  EXPECT_GT(ctx.ledger().time_us(Cost::SpMV), 0);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::Invert), 0);
}

INSTANTIATE_TEST_SUITE_P(Grids, DistSpmvGrids, ::testing::Values(1, 4, 9, 16, 25),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(DistSpmv, MisalignedVectorThrows) {
  SimContext ctx = make_ctx(4);
  Rng rng(31);
  const DistMatrix dist =
      DistMatrix::distribute(ctx, er_bipartite_m(10, 12, 30, rng));
  DistSpVec<Vertex> wrong_space(ctx, VSpace::Row, 12);
  EXPECT_THROW(dist_spmv_col_to_row(ctx, Cost::SpMV, dist, wrong_space,
                                    Select2ndMinParent{}),
               std::invalid_argument);
  DistSpVec<Vertex> wrong_len(ctx, VSpace::Col, 11);
  EXPECT_THROW(dist_spmv_col_to_row(ctx, Cost::SpMV, dist, wrong_len,
                                    Select2ndMinParent{}),
               std::invalid_argument);
}

TEST(DistSpmv, RectangularExtremes) {
  // Tall and wide matrices where one dimension is smaller than the grid side.
  SimContext ctx = make_ctx(16);
  Rng rng(37);
  const CooMatrix coo = er_bipartite_m(3, 70, 100, rng);
  const CscMatrix seq = CscMatrix::from_coo(coo);
  const DistMatrix dist = DistMatrix::distribute(ctx, coo);
  const SpVec<Vertex> x = random_frontier(70, 0.5, rng);
  DistSpVec<Vertex> dx(ctx, VSpace::Col, 70);
  dx.from_global(x);
  EXPECT_EQ(
      dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dx, Select2ndMinParent{})
          .to_global(),
      spmv(seq, x, Select2ndMinParent{}));
}

}  // namespace
}  // namespace mcm
