#include "dist/dist_vec.hpp"

#include <gtest/gtest.h>

#include "algebra/vertex.hpp"

namespace mcm {
namespace {

class DistVecGrids : public ::testing::TestWithParam<int> {
 protected:
  SimContext make_ctx() const {
    SimConfig config;
    config.cores = GetParam();
    config.threads_per_process = 1;
    return SimContext(config);
  }
};

TEST_P(DistVecGrids, LayoutCoversEveryIndexExactlyOnce) {
  const SimContext ctx = make_ctx();
  for (const VSpace space : {VSpace::Row, VSpace::Col}) {
    for (const Index n : {Index{1}, Index{17}, Index{100}}) {
      const VecLayout layout(ctx.grid(), space, n);
      std::vector<int> owner_count(static_cast<std::size_t>(n), 0);
      for (int r = 0; r < ctx.processes(); ++r) {
        for (Index local = 0; local < layout.piece_size(r); ++local) {
          const Index g = layout.to_global(r, local);
          ASSERT_GE(g, 0);
          ASSERT_LT(g, n);
          ++owner_count[static_cast<std::size_t>(g)];
          EXPECT_EQ(layout.owner_rank(g), r);
          EXPECT_EQ(layout.to_local(g), local);
        }
      }
      for (const int count : owner_count) EXPECT_EQ(count, 1);
    }
  }
}

TEST_P(DistVecGrids, DenseFromToStdRoundTrip) {
  const SimContext ctx = make_ctx();
  DistDenseVec<Index> v(ctx, VSpace::Row, 37, kNull);
  std::vector<Index> values(37);
  for (Index i = 0; i < 37; ++i) values[static_cast<std::size_t>(i)] = i * i;
  v.from_std(values);
  EXPECT_EQ(v.to_std(), values);
  for (Index i = 0; i < 37; ++i) EXPECT_EQ(v.at(i), i * i);
}

TEST_P(DistVecGrids, DenseSetAndAt) {
  const SimContext ctx = make_ctx();
  DistDenseVec<Index> v(ctx, VSpace::Col, 23, kNull);
  v.set(11, 99);
  EXPECT_EQ(v.at(11), 99);
  EXPECT_EQ(v.at(12), kNull);
}

TEST_P(DistVecGrids, SparseGlobalRoundTrip) {
  const SimContext ctx = make_ctx();
  SpVec<Vertex> global(29);
  global.push_back(0, Vertex(1, 2));
  global.push_back(13, Vertex(3, 4));
  global.push_back(28, Vertex(5, 6));
  DistSpVec<Vertex> v(ctx, VSpace::Col, 29);
  v.from_global(global);
  EXPECT_EQ(v.to_global(), global);
  EXPECT_EQ(v.nnz_unaccounted(), 3);
}

TEST_P(DistVecGrids, SparsePieceIndicesAreLocal) {
  const SimContext ctx = make_ctx();
  SpVec<Index> global(40);
  for (Index i = 0; i < 40; i += 3) global.push_back(i, i);
  DistSpVec<Index> v(ctx, VSpace::Row, 40);
  v.from_global(global);
  for (int r = 0; r < ctx.processes(); ++r) {
    const SpVec<Index>& piece = v.piece(r);
    EXPECT_EQ(piece.len(), v.layout().piece_size(r));
    for (Index k = 0; k < piece.nnz(); ++k) {
      EXPECT_LT(piece.index_at(k), piece.len());
      // Values were global indices, so they recover the global position.
      EXPECT_EQ(v.layout().to_global(r, piece.index_at(k)), piece.value_at(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, DistVecGrids, ::testing::Values(1, 4, 9, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(DistVec, FromStdLengthMismatchThrows) {
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  SimContext ctx(config);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  EXPECT_THROW(v.from_std(std::vector<Index>(9)), std::invalid_argument);
}

TEST(DistVec, FromGlobalLengthMismatchThrows) {
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  SimContext ctx(config);
  DistSpVec<Index> v(ctx, VSpace::Row, 10);
  EXPECT_THROW(v.from_global(SpVec<Index>(9)), std::invalid_argument);
}

TEST(DistVec, VectorShorterThanGridStillWorks) {
  // 16 ranks, 3-element vector: most pieces are empty.
  SimConfig config;
  config.cores = 16;
  config.threads_per_process = 1;
  SimContext ctx(config);
  DistDenseVec<Index> v(ctx, VSpace::Col, 3, Index{7});
  EXPECT_EQ(v.to_std(), std::vector<Index>(3, 7));
}

}  // namespace
}  // namespace mcm
