#include "dist/gather.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

TEST(Gather, MatrixRoundTripsThroughRoot) {
  SimContext ctx = make_ctx(9);
  Rng rng(3);
  CooMatrix original = er_bipartite_m(33, 27, 200, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, original);
  CooMatrix gathered = gather_matrix_to_root(ctx, dist);
  gathered.sort_dedup();
  original.sort_dedup();
  EXPECT_EQ(gathered.rows, original.rows);
  EXPECT_EQ(gathered.cols, original.cols);
  EXPECT_GT(ctx.ledger().time_us(Cost::GatherScatter), 0);
  EXPECT_EQ(ctx.ledger().words(Cost::GatherScatter),
            2 * static_cast<std::uint64_t>(original.nnz()));
}

TEST(Gather, ScatterMatesDistributesCorrectly) {
  SimContext ctx = make_ctx(4);
  std::vector<Index> mate_r{2, kNull, 0};
  std::vector<Index> mate_c{2, kNull, 0, kNull};
  const ScatteredMates out = scatter_mates_from_root(ctx, mate_r, mate_c);
  EXPECT_EQ(out.mate_r.to_std(), mate_r);
  EXPECT_EQ(out.mate_c.to_std(), mate_c);
  EXPECT_GT(ctx.ledger().time_us(Cost::GatherScatter), 0);
}

TEST(Gather, ModelCostGrowsWithEdges) {
  SimContext ctx = make_ctx(1024);
  const double small = gather_scatter_model_seconds(ctx, 1'000'000, 2'000'000);
  const double big = gather_scatter_model_seconds(ctx, 1'000'000'000, 2'000'000);
  EXPECT_GT(big, small * 100);
}

TEST(Gather, ModelMatchesPaperScale) {
  // Paper §VI-E: ~900M nonzeros (nlpkkt200) take ~20 seconds to gather and
  // scatter on 2048 cores. The preset should land in the same decade.
  SimContext ctx = make_ctx(1024);
  const double seconds =
      gather_scatter_model_seconds(ctx, 900'000'000, 3'200'000);
  EXPECT_GT(seconds, 2.0);
  EXPECT_LT(seconds, 200.0);
}

}  // namespace
}  // namespace mcm
