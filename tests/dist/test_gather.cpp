#include "dist/gather.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes,
                    WireFormat wire = WireFormat::Auto) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.wire = wire;
  return SimContext(config);
}

TEST(Gather, MatrixRoundTripsThroughRoot) {
  // Raw wire: the historical flat accounting of 2 words per edge.
  SimContext ctx = make_ctx(9, WireFormat::Raw);
  Rng rng(3);
  CooMatrix original = er_bipartite_m(33, 27, 200, rng);
  const DistMatrix dist = DistMatrix::distribute(ctx, original);
  CooMatrix gathered = gather_matrix_to_root(ctx, dist);
  gathered.sort_dedup();
  original.sort_dedup();
  EXPECT_EQ(gathered.rows, original.rows);
  EXPECT_EQ(gathered.cols, original.cols);
  EXPECT_GT(ctx.ledger().time_us(Cost::GatherScatter), 0);
  EXPECT_EQ(ctx.ledger().words(Cost::GatherScatter),
            2 * static_cast<std::uint64_t>(original.nnz()));
}

TEST(Gather, AutoWireCompressesGatherBelowRaw) {
  // The corrected charge prices each block's COO message individually:
  // under auto the total must stay at or below the raw 2 * nnz words while
  // the gathered matrix stays bit-identical (satellite regression for the
  // former flat, uncompressible charge).
  SimContext raw_ctx = make_ctx(9, WireFormat::Raw);
  SimContext auto_ctx = make_ctx(9, WireFormat::Auto);
  Rng rng(3);
  CooMatrix original = er_bipartite_m(33, 27, 200, rng);
  const DistMatrix dist_raw = DistMatrix::distribute(raw_ctx, original);
  const DistMatrix dist_auto = DistMatrix::distribute(auto_ctx, original);
  CooMatrix from_raw = gather_matrix_to_root(raw_ctx, dist_raw);
  CooMatrix from_auto = gather_matrix_to_root(auto_ctx, dist_auto);
  from_raw.sort_dedup();
  from_auto.sort_dedup();
  EXPECT_EQ(from_raw.rows, from_auto.rows);
  EXPECT_EQ(from_raw.cols, from_auto.cols);
  // Same message count and raw accounting either way...
  EXPECT_EQ(auto_ctx.ledger().messages(Cost::GatherScatter),
            raw_ctx.ledger().messages(Cost::GatherScatter));
  EXPECT_EQ(auto_ctx.ledger().wire_raw(Cost::GatherScatter),
            raw_ctx.ledger().words(Cost::GatherScatter));
  EXPECT_EQ(raw_ctx.ledger().words(Cost::GatherScatter),
            2 * static_cast<std::uint64_t>(original.nnz()));
  // ...but the encoded payload must shrink on this small-id fixture.
  EXPECT_LT(auto_ctx.ledger().words(Cost::GatherScatter),
            raw_ctx.ledger().words(Cost::GatherScatter));
  EXPECT_EQ(auto_ctx.ledger().wire_sent(Cost::GatherScatter),
            auto_ctx.ledger().words(Cost::GatherScatter));
}

TEST(Gather, ScatterMatesDistributesCorrectly) {
  SimContext ctx = make_ctx(4);
  std::vector<Index> mate_r{2, kNull, 0};
  std::vector<Index> mate_c{2, kNull, 0, kNull};
  const ScatteredMates out = scatter_mates_from_root(ctx, mate_r, mate_c);
  EXPECT_EQ(out.mate_r.to_std(), mate_r);
  EXPECT_EQ(out.mate_c.to_std(), mate_c);
  EXPECT_GT(ctx.ledger().time_us(Cost::GatherScatter), 0);
}

TEST(Gather, ModelCostGrowsWithEdges) {
  SimContext ctx = make_ctx(1024);
  const double small = gather_scatter_model_seconds(ctx, 1'000'000, 2'000'000);
  const double big = gather_scatter_model_seconds(ctx, 1'000'000'000, 2'000'000);
  EXPECT_GT(big, small * 100);
}

TEST(Gather, ModelMatchesPaperScale) {
  // Paper §VI-E: ~900M nonzeros (nlpkkt200) take ~20 seconds to gather and
  // scatter on 2048 cores. The preset should land in the same decade.
  SimContext ctx = make_ctx(1024);
  const double seconds =
      gather_scatter_model_seconds(ctx, 900'000'000, 3'200'000);
  EXPECT_GT(seconds, 2.0);
  EXPECT_LT(seconds, 200.0);
}

}  // namespace
}  // namespace mcm
