/// Host-engine equivalence suite: the simulator's results AND its simulated
/// cost ledger must be bit-identical for every host thread count. Each
/// scenario runs once under host_deterministic (forced serial, in-order) and
/// then at 1/2/4/8 host lanes; results are compared with EXPECT_EQ and the
/// ledger per-category times (doubles), message and word counters must match
/// exactly. Run under ThreadSanitizer via -DMCM_TSAN=ON to also prove the
/// loops are race-free.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "algebra/semiring.hpp"
#include "algebra/vertex.hpp"
#include "core/mcm_dist.hpp"
#include "dist/dist_bitmap.hpp"
#include "dist/dist_bottomup.hpp"
#include "dist/dist_primitives.hpp"
#include "dist/dist_spmv.hpp"
#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes, int host_threads, bool deterministic) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.host_threads = host_threads;
  config.host_deterministic = deterministic;
  return SimContext(config);
}

void expect_ledger_identical(const CostLedger& got, const CostLedger& want,
                             const std::string& label) {
  for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
    const Cost category = static_cast<Cost>(c);
    // Exact double equality on purpose: charges must be computed from the
    // same amounts in the same order regardless of host thread count.
    EXPECT_EQ(got.time_us(category), want.time_us(category))
        << label << " time[" << cost_name(category) << "]";
    EXPECT_EQ(got.messages(category), want.messages(category))
        << label << " messages[" << cost_name(category) << "]";
    EXPECT_EQ(got.words(category), want.words(category))
        << label << " words[" << cost_name(category) << "]";
  }
}

/// Runs `scenario(ctx)` under forced-serial execution, then at several host
/// thread counts, and requires identical return values and ledgers.
template <typename Scenario>
void expect_host_equivalent(int processes, Scenario&& scenario) {
  SimContext reference = make_ctx(processes, 1, /*deterministic=*/true);
  const auto expected = scenario(reference);
  for (const int threads : {1, 2, 4, 8}) {
    SimContext ctx = make_ctx(processes, threads, /*deterministic=*/false);
    const auto got = scenario(ctx);
    const std::string label =
        "p=" + std::to_string(processes) + " threads=" + std::to_string(threads);
    EXPECT_EQ(got, expected) << label;
    expect_ledger_identical(ctx.ledger(), reference.ledger(), label);
  }
}

SpVec<Vertex> random_frontier(Index len, double density, Rng& rng) {
  SpVec<Vertex> x(len);
  for (Index j = 0; j < len; ++j) {
    if (rng.next_bool(density)) {
      x.push_back(j, Vertex(j, static_cast<Index>(rng.next_below(
                                   static_cast<std::uint64_t>(len)))));
    }
  }
  return x;
}

class HostEquivGrids : public ::testing::TestWithParam<int> {};

TEST_P(HostEquivGrids, SpmvBothDirections) {
  const int p = GetParam();
  Rng rng(101);
  const CooMatrix coo = er_bipartite_m(83, 91, 700, rng);
  const SpVec<Vertex> x_col = random_frontier(91, 0.5, rng);
  const SpVec<Vertex> x_row = random_frontier(83, 0.5, rng);
  expect_host_equivalent(p, [&](SimContext& ctx) {
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    DistSpVec<Vertex> dc(ctx, VSpace::Col, 91);
    dc.from_global(x_col);
    DistSpVec<Vertex> dr(ctx, VSpace::Row, 83);
    dr.from_global(x_row);
    const auto down =
        dist_spmv_col_to_row(ctx, Cost::SpMV, dist, dc, Select2ndMinParent{});
    const auto up =
        dist_spmv_row_to_col(ctx, Cost::SpMV, dist, dr, Select2ndMinParent{});
    return std::make_pair(down.to_global(), up.to_global());
  });
}

TEST_P(HostEquivGrids, InvertWithCollisions) {
  const int p = GetParam();
  Rng rng(103);
  // Few distinct roots force heavy key collisions: keep-first order matters.
  const Index n = 120;
  SpVec<Vertex> x(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(0.7)) {
      x.push_back(i, Vertex(i, static_cast<Index>(rng.next_below(7))));
    }
  }
  expect_host_equivalent(p, [&](SimContext& ctx) {
    DistSpVec<Vertex> dx(ctx, VSpace::Row, n);
    dx.from_global(x);
    const auto inverted = dist_invert<Index>(
        ctx, Cost::Invert, dx, VSpace::Col, n,
        [](Index, const Vertex& v) { return v.root; },
        [](Index g, const Vertex&) { return g; });
    return inverted.to_global();
  });
}

TEST_P(HostEquivGrids, InvertLargeEnoughForRadixPath) {
  const int p = GetParam();
  Rng rng(107);
  const Index n = 6000;  // above kRadixSortMinSize at small p
  SpVec<Index> x(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(0.8)) {
      x.push_back(i, static_cast<Index>(
                         rng.next_below(static_cast<std::uint64_t>(n))));
    }
  }
  expect_host_equivalent(p, [&](SimContext& ctx) {
    DistSpVec<Index> dx(ctx, VSpace::Col, n);
    dx.from_global(x);
    const auto inverted = dist_invert<Index>(
        ctx, Cost::Invert, dx, VSpace::Row, n,
        [](Index, Index value) { return value; },
        [](Index g, Index) { return g; });
    return inverted.to_global();
  });
}

TEST_P(HostEquivGrids, PruneWithDuplicateRoots) {
  const int p = GetParam();
  Rng rng(109);
  const Index n = 140;
  SpVec<Vertex> x(n);
  for (Index i = 0; i < n; ++i) {
    if (rng.next_bool(0.6)) {
      x.push_back(i, Vertex(i, static_cast<Index>(rng.next_below(12))));
    }
  }
  expect_host_equivalent(p, [&](SimContext& ctx) {
    DistSpVec<Vertex> dx(ctx, VSpace::Row, n);
    dx.from_global(x);
    // Every rank nominates the roots of its own entries, duplicates and all
    // (mirrors the mcm_graft dead-tree collection).
    std::vector<std::vector<Index>> roots_by_rank(
        static_cast<std::size_t>(ctx.processes()));
    for (int r = 0; r < ctx.processes(); ++r) {
      const SpVec<Vertex>& piece = dx.piece(r);
      for (Index k = 0; k < piece.nnz(); ++k) {
        if (piece.value_at(k).root < 6) {
          roots_by_rank[static_cast<std::size_t>(r)].push_back(
              piece.value_at(k).root);
        }
      }
    }
    const auto pruned =
        dist_prune(ctx, Cost::Prune, dx, roots_by_rank,
                   [](const Vertex& v) { return v.root; });
    return pruned.to_global();
  });
}

TEST_P(HostEquivGrids, BottomUpStep) {
  const int p = GetParam();
  Rng rng(113);
  const CooMatrix coo = er_bipartite_m(77, 85, 650, rng);
  const SpVec<Vertex> frontier = random_frontier(85, 0.6, rng);
  std::vector<Index> pi(77);
  for (auto& v : pi) {
    v = rng.next_bool(0.5) ? kNull : static_cast<Index>(rng.next_below(85));
  }
  expect_host_equivalent(p, [&](SimContext& ctx) {
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    DistSpVec<Vertex> f_c(ctx, VSpace::Col, 85);
    f_c.from_global(frontier);
    DistDenseVec<Index> pi_r(ctx, VSpace::Row, 77, kNull);
    pi_r.from_std(pi);
    const auto found = dist_bottom_up_step(ctx, Cost::SpMV, dist, f_c, pi_r);
    return found.to_global();
  });
}

TEST_P(HostEquivGrids, MaskedSpmvWithBitmapUpdateAndPartition) {
  const int p = GetParam();
  Rng rng(131);
  const CooMatrix coo = er_bipartite_m(83, 91, 700, rng);
  const SpVec<Vertex> x_col = random_frontier(91, 0.5, rng);
  std::vector<Index> mate(83);
  for (auto& v : mate) {
    v = rng.next_bool(0.5) ? kNull : static_cast<Index>(rng.next_below(91));
  }
  expect_host_equivalent(p, [&](SimContext& ctx) {
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    DistSpVec<Vertex> f_c(ctx, VSpace::Col, 91);
    f_c.from_global(x_col);
    DistDenseVec<Index> pi_r(ctx, VSpace::Row, 83, kNull);
    DistDenseVec<Index> mate_r(ctx, VSpace::Row, 83, kNull);
    mate_r.from_std(mate);
    VisitedBitmap visited(pi_r.layout());
    // Two masked BFS iterations: multiply, fuse-partition, replicate the
    // delta, multiply again with the now non-trivial mask.
    DistSpVec<Vertex> f_r = dist_spmv_col_to_row(
        ctx, Cost::SpMV, dist, f_c, Select2ndMinParent{}, &visited);
    FrontierPartition<Vertex> part = dist_partition_frontier(
        ctx, Cost::Other, f_r, pi_r, mate_r,
        [](const Vertex& v) { return v.parent; },
        /*expect_all_unvisited=*/true);
    visited.update(ctx, Cost::Other, {&part.matched, &part.unmatched});
    const DistSpVec<Vertex> second = dist_spmv_col_to_row(
        ctx, Cost::SpMV, dist, f_c, Select2ndMinParent{}, &visited);
    return std::make_tuple(part.matched.to_global(),
                           part.unmatched.to_global(), part.dropped,
                           pi_r.to_std(), second.to_global());
  });
}

TEST_P(HostEquivGrids, FullMcmDistPipeline) {
  const int p = GetParam();
  Rng rng(127);
  const CooMatrix coo = er_bipartite_m(60, 60, 420, rng);
  expect_host_equivalent(p, [&](SimContext& ctx) {
    const DistMatrix dist = DistMatrix::distribute(ctx, coo);
    McmDistStats stats;
    const Matching m = mcm_dist(ctx, dist, Matching(60, 60), {}, &stats);
    return std::make_tuple(m.mate_r, m.mate_c, stats.phases, stats.iterations,
                           stats.augmentations);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, HostEquivGrids, ::testing::Values(1, 4, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(HostEquivalence, InvertKeyOutOfRangeStillThrowsAcrossThreadCounts) {
  for (const int threads : {1, 4}) {
    SimContext ctx = make_ctx(4, threads, false);
    const Index n = 30;
    SpVec<Index> x(n);
    x.push_back(3, 999);  // key far outside [0, n)
    DistSpVec<Index> dx(ctx, VSpace::Row, n);
    dx.from_global(x);
    EXPECT_THROW((void)dist_invert<Index>(
                     ctx, Cost::Invert, dx, VSpace::Col, n,
                     [](Index, Index value) { return value; },
                     [](Index g, Index) { return g; }),
                 std::out_of_range)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace mcm
