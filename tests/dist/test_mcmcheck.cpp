/// Negative-path suite for the mcmcheck BSP-discipline sanitizer: each test
/// commits a violation on purpose and expects a structured CheckViolation
/// naming the primitive, rank and index involved. The whole suite skips when
/// the checker is compiled out (MCM_CHECK=OFF builds) — the positive
/// contract (zero-cost no-ops) is covered by every other test running there.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "dist/dist_mat.hpp"
#include "dist/dist_vec.hpp"
#include "dist/rma.hpp"
#include "gridsim/mcmcheck.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

/// Forces throw mode for the duration of a test and restores the previous
/// mode afterwards, so test order and MCM_CHECK_MODE cannot skew results.
class McmCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!check::kCompiledIn) {
      GTEST_SKIP() << "mcmcheck compiled out (build with -DMCM_CHECK=ON)";
    }
    previous_ = check::mode();
    check::set_mode(CheckMode::Throw);
  }
  void TearDown() override {
    if (check::kCompiledIn) check::set_mode(previous_);
  }

 private:
  CheckMode previous_ = CheckMode::Off;
};

TEST_F(McmCheck, CrossRankPieceReadReported) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  const check::RankScope scope(0, "TEST.piece");
  try {
    (void)v.piece(1);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "cross-rank-piece-access");
    EXPECT_EQ(violation.primitive(), "TEST.piece");
    EXPECT_EQ(violation.rank(), 0);
    EXPECT_NE(std::string(violation.what()).find("rank 0"), std::string::npos);
    EXPECT_NE(std::string(violation.what()).find("DistDenseVec::piece"),
              std::string::npos);
  }
}

TEST_F(McmCheck, SparsePieceCheckedToo) {
  SimContext ctx = make_ctx(4);
  DistSpVec<Index> v(ctx, VSpace::Col, 20);
  const check::RankScope scope(2, "TEST.sparse");
  EXPECT_THROW((void)v.piece(0), CheckViolation);
  EXPECT_NO_THROW((void)v.piece(2));
}

TEST_F(McmCheck, ElementAccessorReportsGlobalIndex) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  const int owner = v.layout().owner_rank(19);
  const int other = owner == 0 ? 1 : 0;
  const check::RankScope scope(other, "TEST.element");
  try {
    v.set(19, 7);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "cross-rank-element-access");
    EXPECT_EQ(violation.rank(), other);
    EXPECT_EQ(violation.index(), 19);
  }
}

TEST_F(McmCheck, MatrixBlockOwnershipChecked) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(8, 8);
  for (Index i = 0; i < 8; ++i) coo.add_edge(i, (i + 1) % 8);
  const DistMatrix a = DistMatrix::distribute(ctx, coo);
  const int other_rank = a.grid().rank_of(0, 0) == 0 ? 1 : 0;
  const check::RankScope scope(other_rank, "TEST.block");
  EXPECT_THROW((void)a.block(0, 0), CheckViolation);
}

TEST_F(McmCheck, SanctionedWindowAllowsCrossRankAccess) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  const check::RankScope scope(0, "TEST.window");
  const check::AccessWindow window("TEST.expand");
  EXPECT_NO_THROW((void)v.piece(3));
  EXPECT_NO_THROW(v.set(19, 1));
}

TEST_F(McmCheck, CodeOutsideAnyScopeIsExempt) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  // Setup / verification / coordinator accesses carry no rank scope and
  // stay free, per the "setup only" accessor contract.
  EXPECT_NO_THROW((void)v.piece(2));
  EXPECT_NO_THROW(v.set(11, 4));
  EXPECT_NO_THROW((void)v.to_std());
}

TEST_F(McmCheck, RmaOpOutsideEpochReported) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  try {
    (void)win.get(1, 3);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "rma-outside-epoch");
    EXPECT_EQ(violation.primitive(), "RmaWindow::get");
    EXPECT_EQ(violation.rank(), 1);
    EXPECT_EQ(violation.index(), 3);
  }
}

TEST_F(McmCheck, ConflictingPutsFromTwoOriginsReported) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.put(0, 5, 10);
  try {
    win.put(1, 5, 11);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "rma-conflict");
    EXPECT_EQ(violation.rank(), 1);
    EXPECT_EQ(violation.index(), 5);
    EXPECT_NE(std::string(violation.what()).find("PUT/PUT"),
              std::string::npos);
  }
}

TEST_F(McmCheck, PutGetConflictReported) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.put(0, 7, 1);
  EXPECT_THROW((void)win.get(2, 7), CheckViolation);
}

TEST_F(McmCheck, SameOriginRepeatAccessAllowed) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.put(0, 5, 10);
  EXPECT_NO_THROW(win.put(0, 5, 11));
  EXPECT_NO_THROW((void)win.get(0, 5));
}

TEST_F(McmCheck, FetchAndOpPairsAllowed) {
  // Two FETCH_AND_OPs on one index are atomic and race-free — fusing
  // GET+PUT into one is exactly the paper's Algorithm 4 refinement, so the
  // checker must not flag it.
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, Index{0});
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  EXPECT_NO_THROW((void)win.fetch_and_replace(0, 6, 1));
  EXPECT_NO_THROW((void)win.fetch_and_replace(3, 6, 2));
  EXPECT_THROW(win.put(1, 6, 9), CheckViolation);  // PUT racing the FAOs
}

TEST_F(McmCheck, FlushClosesEpochAndForgetsConflicts) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.put(0, 5, 10);
  win.flush(Cost::Augment);
  EXPECT_FALSE(win.epoch_open());
  EXPECT_THROW(win.put(1, 5, 11), CheckViolation);  // closed again
  win.open_epoch();
  EXPECT_NO_THROW(win.put(1, 5, 11));  // previous epoch's PUT forgotten
}

TEST_F(McmCheck, ConservationImbalanceReported) {
  try {
    check::verify_conservation("TEST", "entries", 3, 4);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "conservation");
    EXPECT_NE(std::string(violation.what()).find("sent (3)"),
              std::string::npos);
  }
  EXPECT_NO_THROW(check::verify_conservation("TEST", "entries", 4, 4));
}

TEST_F(McmCheck, NegativeChargeReported) {
  SimContext ctx = make_ctx(4);
  try {
    ctx.ledger().charge_time(Cost::Other, -1.0);
    FAIL() << "expected CheckViolation";
  } catch (const CheckViolation& violation) {
    EXPECT_EQ(violation.kind(), "ledger-monotonicity");
  }
  EXPECT_THROW(
      ctx.ledger().charge_time(Cost::Other,
                               std::numeric_limits<double>::quiet_NaN()),
      CheckViolation);
  EXPECT_NO_THROW(ctx.ledger().charge_time(Cost::Other, 1.5));
}

TEST_F(McmCheck, OffModeSilencesEverything) {
  check::set_mode(CheckMode::Off);
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  {
    const check::RankScope scope(0, "TEST.off");
    EXPECT_NO_THROW((void)v.piece(1));
  }
  RmaWindow<Index> win(ctx, v);
  EXPECT_NO_THROW(win.put(0, 5, 1));  // no epoch, no complaint
  EXPECT_NO_THROW(check::verify_conservation("TEST", "entries", 1, 2));
}

TEST_F(McmCheck, SetModeRoundTrips) {
  check::set_mode(CheckMode::Abort);
  EXPECT_EQ(SimContext::check_mode(), CheckMode::Abort);
  SimContext::set_check_mode(CheckMode::Throw);
  EXPECT_EQ(check::mode(), CheckMode::Throw);
}

// --- always-on behavior (not gated on the compile-time switch) ---

TEST(McmCheckModes, ModeFromStringParses) {
  EXPECT_EQ(check::mode_from_string("off"), CheckMode::Off);
  EXPECT_EQ(check::mode_from_string("throw"), CheckMode::Throw);
  EXPECT_EQ(check::mode_from_string("abort"), CheckMode::Abort);
  EXPECT_THROW((void)check::mode_from_string("loud"), std::invalid_argument);
  EXPECT_STREQ(check::mode_name(CheckMode::Abort), "abort");
}

TEST(McmCheckModes, DoubleEpochOpenAlwaysThrows) {
  // Epoch bookkeeping is structural, not a sanitizer check: it is enforced
  // in every build so Rel and Debug runs exercise identical control flow.
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  EXPECT_THROW(win.open_epoch(), std::logic_error);
  win.flush(Cost::Augment);
  EXPECT_NO_THROW(win.open_epoch());
}

}  // namespace
}  // namespace mcm
