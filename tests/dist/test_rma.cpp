#include "dist/rma.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  // Word-exact ledger expectations below assume uncompressed payloads.
  config.wire = WireFormat::Raw;
  return SimContext(config);
}

TEST(Rma, GetReadsTargetValue) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 20, Index{3});
  v.set(7, 42);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  EXPECT_EQ(win.get(0, 7), 42);
  EXPECT_EQ(win.get(3, 8), 3);
}

TEST(Rma, PutWritesTargetValue) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Col, 20, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.put(2, 13, 99);
  EXPECT_EQ(v.at(13), 99);
}

TEST(Rma, FetchAndReplaceIsAtomicSwap) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, Index{5});
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  EXPECT_EQ(win.fetch_and_replace(1, 4, 77), 5);
  EXPECT_EQ(v.at(4), 77);
  EXPECT_EQ(win.fetch_and_replace(1, 4, 88), 77);
}

TEST(Rma, OpsCountedPerOrigin) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  (void)win.get(0, 1);
  (void)win.get(0, 2);
  win.put(2, 3, 1);
  EXPECT_EQ(win.ops_at(0), 2u);
  EXPECT_EQ(win.ops_at(1), 0u);
  EXPECT_EQ(win.ops_at(2), 1u);
}

TEST(Rma, FlushChargesMaxOverOrigins) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  for (int i = 0; i < 5; ++i) (void)win.get(0, 0);
  (void)win.get(1, 1);
  win.flush(Cost::Augment);
  // 5 ops at alpha + beta each (the asynchronous max, not the sum of 6).
  const double expected = 5 * (ctx.alpha() + ctx.beta_word());
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), expected, 1e-9);
  // Message counter reflects every op issued.
  EXPECT_EQ(ctx.ledger().messages(Cost::Augment), 6u);
  // Counters reset after flush.
  EXPECT_EQ(win.ops_at(0), 0u);
}

TEST(Rma, SingleProcessWindowIsFree) {
  SimContext ctx = make_ctx(1);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  for (int i = 0; i < 100; ++i) win.put(0, i % 10, i);
  win.flush(Cost::Augment);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::Augment), 0.0);
}

TEST(Rma, BadOriginThrows) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  EXPECT_THROW((void)win.get(-1, 0), std::out_of_range);
  EXPECT_THROW(win.put(4, 0, 1), std::out_of_range);
}

TEST(Rma, FlushWithoutEpochThrows) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  EXPECT_THROW(win.flush(Cost::Augment), std::logic_error);
  // And after a proper epoch closes, a second flush is again rejected.
  win.open_epoch();
  (void)win.get(0, 1);
  win.flush(Cost::Augment);
  EXPECT_THROW(win.flush(Cost::Augment), std::logic_error);
}

TEST(Rma, ZeroOpEpochChargesNothing) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  win.flush(Cost::Augment);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::Augment), 0.0);
  EXPECT_EQ(ctx.ledger().messages(Cost::Augment), 0u);
}

TEST(Rma, TwoIdenticalEpochsChargeIdentically) {
  // Regression: per-origin counters and conflict state must reset between
  // epochs — a counter carried over from epoch 1 would inflate epoch 2.
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  const auto run_epoch = [&] {
    win.open_epoch(Cost::Augment);
    for (int i = 0; i < 3; ++i) (void)win.get(0, i);
    win.put(1, 5, 7);
    win.flush(Cost::Augment);
  };
  run_epoch();
  const double first_us = ctx.ledger().time_us(Cost::Augment);
  const std::uint64_t first_msgs = ctx.ledger().messages(Cost::Augment);
  run_epoch();
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), 2 * first_us, 1e-9);
  EXPECT_EQ(ctx.ledger().messages(Cost::Augment), 2 * first_msgs);
}

TEST(Rma, StrayOpsBeforeOpenDoNotInflateTheEpoch) {
  // Ops outside an epoch are a discipline violation (mcmcheck reports them
  // in checked builds) but tolerated when the checker is off; their counts
  // must not leak into the next epoch's flush charge.
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 10, kNull);
  RmaWindow<Index> win(ctx, v);
  for (int i = 0; i < 8; ++i) (void)win.get(0, i % 10);
  EXPECT_EQ(win.ops_at(0), 8u);
  win.open_epoch();
  EXPECT_EQ(win.ops_at(0), 0u);  // open resets stray counts
  (void)win.get(0, 1);
  win.flush(Cost::Augment);
  const double expected = ctx.alpha() + ctx.beta_word();
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), expected, 1e-9);
  EXPECT_EQ(ctx.ledger().messages(Cost::Augment), 1u);
}

}  // namespace
}  // namespace mcm
