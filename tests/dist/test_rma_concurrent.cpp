/// Concurrency regression suite for RmaWindow's per-origin op counters.
/// core/augment.cpp runs its path-parallel origin walks concurrently on the
/// host engine, so the counters must be exact under simultaneous increments
/// from many host threads. Lives in the tests_host binary and is named
/// HostEngineRma* so the CI TSan leg (-R 'HostEquiv|ThreadPool|Scratch|
/// HostEngine') races it under the sanitizer.

#include <gtest/gtest.h>

#include "dist/rma.hpp"
#include "gridsim/context.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes, int host_threads) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  config.host_threads = host_threads;
  // Word-exact ledger expectations below assume uncompressed payloads.
  config.wire = WireFormat::Raw;
  return SimContext(config);
}

TEST(HostEngineRma, ConcurrentCountersAreExact) {
  constexpr int kOrigins = 9;
  constexpr Index kOpsPerOrigin = 500;
  SimContext ctx = make_ctx(kOrigins, 4);
  DistDenseVec<Index> v(ctx, VSpace::Row, kOrigins * kOpsPerOrigin, Index{0});
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  // Each origin PUTs to its own index range: disjoint data, shared counters.
  ctx.host().for_ranks(kOrigins, [&](std::int64_t origin, int) {
    const Index base = static_cast<Index>(origin) * kOpsPerOrigin;
    for (Index k = 0; k < kOpsPerOrigin; ++k) {
      win.put(static_cast<int>(origin), base + k, static_cast<Index>(origin));
    }
  });
  for (int origin = 0; origin < kOrigins; ++origin) {
    EXPECT_EQ(win.ops_at(origin), static_cast<std::uint64_t>(kOpsPerOrigin));
  }
  win.flush(Cost::Augment);
  const double expected =
      static_cast<double>(kOpsPerOrigin) * (ctx.alpha() + ctx.beta_word());
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), expected, 1e-6);
}

TEST(HostEngineRma, ConcurrentMixedOpsLandCorrectly) {
  constexpr int kOrigins = 4;
  constexpr Index kSlots = 64;
  SimContext ctx = make_ctx(kOrigins, 4);
  DistDenseVec<Index> v(ctx, VSpace::Col, kOrigins * kSlots, Index{-1});
  RmaWindow<Index> win(ctx, v);
  win.open_epoch();
  ctx.host().for_ranks(kOrigins, [&](std::int64_t origin, int) {
    const Index base = static_cast<Index>(origin) * kSlots;
    for (Index k = 0; k < kSlots; ++k) {
      win.put(static_cast<int>(origin), base + k, base + k);
    }
    for (Index k = 0; k < kSlots; ++k) {
      const Index got = win.get(static_cast<int>(origin), base + k);
      EXPECT_EQ(got, base + k);
      (void)win.fetch_and_replace(static_cast<int>(origin), base + k, got + 1);
    }
  });
  win.flush(Cost::Augment);
  for (Index g = 0; g < kOrigins * kSlots; ++g) {
    EXPECT_EQ(v.at(g), g + 1);
  }
  EXPECT_EQ(win.ops_at(0), 0u);  // flush resets
}

TEST(HostEngineRma, CountersSurviveRepeatedEpochs) {
  constexpr int kOrigins = 4;
  SimContext ctx = make_ctx(kOrigins, 2);
  DistDenseVec<Index> v(ctx, VSpace::Row, 128, Index{0});
  RmaWindow<Index> win(ctx, v);
  for (int epoch = 0; epoch < 3; ++epoch) {
    win.open_epoch();
    ctx.host().for_ranks(kOrigins, [&](std::int64_t origin, int) {
      for (Index k = 0; k < 32; ++k) {
        win.put(static_cast<int>(origin),
                static_cast<Index>(origin) * 32 + k, k);
      }
    });
    for (int origin = 0; origin < kOrigins; ++origin) {
      EXPECT_EQ(win.ops_at(origin), 32u);
    }
    win.flush(Cost::Augment);
    EXPECT_FALSE(win.epoch_open());
  }
}

}  // namespace
}  // namespace mcm
