#include "gen/er.hpp"

#include <gtest/gtest.h>

#include "matching/hopcroft_karp.hpp"
#include "matrix/csc.hpp"

namespace mcm {
namespace {

TEST(ErM, ExactEdgeCount) {
  Rng rng(1);
  const CooMatrix m = er_bipartite_m(50, 60, 500, rng);
  EXPECT_EQ(m.nnz(), 500);
  EXPECT_NO_THROW(m.validate());
}

TEST(ErM, FullMatrixPossible) {
  Rng rng(2);
  const CooMatrix m = er_bipartite_m(5, 4, 20, rng);
  EXPECT_EQ(m.nnz(), 20);
}

TEST(ErM, TooManyEdgesThrows) {
  Rng rng(3);
  EXPECT_THROW(er_bipartite_m(3, 3, 10, rng), std::invalid_argument);
}

TEST(ErM, ZeroEdges) {
  Rng rng(4);
  EXPECT_EQ(er_bipartite_m(10, 10, 0, rng).nnz(), 0);
}

TEST(ErP, DensityRoughlyP) {
  Rng rng(5);
  const CooMatrix m = er_bipartite_p(200, 200, 0.05, rng);
  const double density =
      static_cast<double>(m.nnz()) / (200.0 * 200.0);
  EXPECT_NEAR(density, 0.05, 0.01);
  EXPECT_NO_THROW(m.validate());
}

TEST(ErP, ExtremeProbabilities) {
  Rng rng(6);
  EXPECT_EQ(er_bipartite_p(20, 20, 0.0, rng).nnz(), 0);
  EXPECT_EQ(er_bipartite_p(20, 20, 1.0, rng).nnz(), 400);
  EXPECT_THROW(er_bipartite_p(5, 5, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(er_bipartite_p(5, 5, -0.1, rng), std::invalid_argument);
}

TEST(ErP, EntriesSortedAndUnique) {
  Rng rng(7);
  CooMatrix m = er_bipartite_p(50, 50, 0.1, rng);
  const Index before = m.nnz();
  m.sort_dedup();
  EXPECT_EQ(m.nnz(), before);  // geometric skipping never duplicates
}

TEST(PlantedPerfect, AlwaysHasPerfectMatching) {
  Rng rng(8);
  for (const Index n : {Index{1}, Index{10}, Index{64}}) {
    const CooMatrix m = planted_perfect(n, 3 * n, rng);
    EXPECT_EQ(maximum_matching_size(CscMatrix::from_coo(m)), n);
  }
}

TEST(PlantedPerfect, ExtraEdgesBoundedByDedup) {
  Rng rng(9);
  const CooMatrix m = planted_perfect(20, 100, rng);
  EXPECT_GE(m.nnz(), 20);
  EXPECT_LE(m.nnz(), 120);
}

}  // namespace
}  // namespace mcm
