#include "gen/rmat.hpp"

#include <gtest/gtest.h>

#include "matrix/csc.hpp"
#include "matrix/stats.hpp"

namespace mcm {
namespace {

TEST(Rmat, PresetsMatchPaperParameters) {
  const RmatParams g500 = RmatParams::g500(10);
  EXPECT_DOUBLE_EQ(g500.a, 0.57);
  EXPECT_DOUBLE_EQ(g500.b, 0.19);
  EXPECT_DOUBLE_EQ(g500.c, 0.19);
  EXPECT_DOUBLE_EQ(g500.d, 0.05);
  EXPECT_DOUBLE_EQ(g500.edge_factor, 32.0);

  const RmatParams ssca = RmatParams::ssca(10);
  EXPECT_DOUBLE_EQ(ssca.a, 0.6);
  EXPECT_NEAR(ssca.b, 0.4 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(ssca.edge_factor, 16.0);

  const RmatParams er = RmatParams::er(10);
  EXPECT_DOUBLE_EQ(er.a, 0.25);
  EXPECT_DOUBLE_EQ(er.edge_factor, 32.0);
}

TEST(Rmat, DimensionsArePowerOfScale) {
  Rng rng(1);
  RmatParams p = RmatParams::er(8);
  p.edge_factor = 4;
  const CooMatrix m = rmat(p, rng);
  EXPECT_EQ(m.n_rows, 256);
  EXPECT_EQ(m.n_cols, 256);
  EXPECT_NO_THROW(m.validate());
}

TEST(Rmat, EdgeCountNearNominal) {
  Rng rng(2);
  RmatParams p = RmatParams::er(10);
  p.edge_factor = 8;
  const CooMatrix m = rmat(p, rng);
  const Index nominal = 8 * 1024;
  EXPECT_LE(m.nnz(), nominal);          // duplicates removed
  EXPECT_GT(m.nnz(), nominal * 8 / 10);  // but not many at this density
}

TEST(Rmat, DeterministicForSameSeed) {
  Rng rng1(7), rng2(7);
  const RmatParams p = RmatParams::g500(8);
  const CooMatrix a = rmat(p, rng1);
  const CooMatrix b = rmat(p, rng2);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
}

TEST(Rmat, G500IsMoreSkewedThanEr) {
  Rng rng1(3), rng2(4);
  const auto g500 =
      compute_stats(CscMatrix::from_coo(rmat(RmatParams::g500(11), rng1)));
  const auto er =
      compute_stats(CscMatrix::from_coo(rmat(RmatParams::er(11), rng2)));
  EXPECT_GT(g500.max_col_degree, 2 * er.max_col_degree);
}

TEST(Rmat, ScrambleChangesLayoutNotSize) {
  Rng rng1(5), rng2(5);
  RmatParams scrambled = RmatParams::g500(8);
  RmatParams raw = scrambled;
  raw.scramble_ids = false;
  const CooMatrix a = rmat(scrambled, rng1);
  const CooMatrix b = rmat(raw, rng2);
  EXPECT_EQ(a.n_rows, b.n_rows);
  EXPECT_NE(a.rows, b.rows);  // same draws, different labels
}

TEST(Rmat, InvalidParamsRejected) {
  Rng rng(1);
  RmatParams bad = RmatParams::er(8);
  bad.a = 0.9;  // sum > 1
  EXPECT_THROW(rmat(bad, rng), std::invalid_argument);
  RmatParams bad_scale = RmatParams::er(0);
  EXPECT_THROW(rmat(bad_scale, rng), std::invalid_argument);
  RmatParams bad_ef = RmatParams::er(8);
  bad_ef.edge_factor = 0;
  EXPECT_THROW(rmat(bad_ef, rng), std::invalid_argument);
  RmatParams negative = RmatParams::er(8);
  negative.a = -0.1;
  negative.b = 0.6;
  EXPECT_THROW(rmat(negative, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
