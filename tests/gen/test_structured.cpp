#include "gen/structured.hpp"

#include <gtest/gtest.h>

#include "matrix/csc.hpp"
#include "matrix/stats.hpp"

namespace mcm {
namespace {

TEST(GridMesh, DimensionsAndDegreeBound) {
  Rng rng(1);
  const CooMatrix m = grid_mesh(10, 12, 0.0, 0.0, rng);
  EXPECT_EQ(m.n_rows, 120);
  EXPECT_EQ(m.n_cols, 120);
  const GraphStats s = compute_stats(CscMatrix::from_coo(m));
  // 4-neighbourhood + self: max degree 5 without diagonals.
  EXPECT_LE(s.max_col_degree, 5);
  EXPECT_EQ(s.empty_cols, 0);  // no drops -> everything connected
}

TEST(GridMesh, DropFractionCreatesDeficiency) {
  Rng rng(2);
  const CooMatrix intact = grid_mesh(20, 20, 0.0, 0.0, rng);
  const CooMatrix dropped = grid_mesh(20, 20, 0.0, 0.4, rng);
  EXPECT_LT(dropped.nnz(), intact.nnz());
}

TEST(GridMesh, DiagonalsIncreaseDegree) {
  Rng rng(3);
  const CooMatrix with = grid_mesh(15, 15, 1.0, 0.0, rng);
  const CooMatrix without = grid_mesh(15, 15, 0.0, 0.0, rng);
  EXPECT_GT(with.nnz(), without.nnz());
}

TEST(GridMesh, RejectsEmptyGrid) {
  Rng rng(4);
  EXPECT_THROW(grid_mesh(0, 5, 0, 0, rng), std::invalid_argument);
}

TEST(Banded, EntriesStayInBand) {
  Rng rng(5);
  const CooMatrix m = banded(50, 3, 1.0, rng);
  for (std::size_t k = 0; k < m.rows.size(); ++k) {
    EXPECT_LE(std::abs(m.rows[k] - m.cols[k]), 3);
  }
  EXPECT_NO_THROW(m.validate());
}

TEST(Banded, FullFillGivesFullBand) {
  Rng rng(6);
  const CooMatrix m = banded(10, 1, 1.0, rng);
  // Tridiagonal: 3n - 2 entries.
  EXPECT_EQ(m.nnz(), 28);
}

TEST(Banded, RejectsBadArgs) {
  Rng rng(7);
  EXPECT_THROW(banded(0, 1, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(banded(5, -1, 0.5, rng), std::invalid_argument);
}

TEST(KktBlock, HasSaddlePointStructure) {
  Rng rng(8);
  const Index primal = 100, dual = 40;
  const CooMatrix m = kkt_block(primal, dual, 2, 0.05, rng);
  EXPECT_EQ(m.n_rows, 140);
  EXPECT_EQ(m.n_cols, 140);
  // (2,2) block must be structurally zero.
  for (std::size_t k = 0; k < m.rows.size(); ++k) {
    EXPECT_FALSE(m.rows[k] >= primal && m.cols[k] >= primal)
        << "dual-dual entry (" << m.rows[k] << ", " << m.cols[k] << ")";
  }
}

TEST(KktBlock, StructurallySymmetric) {
  Rng rng(9);
  const CooMatrix m = kkt_block(60, 20, 1, 0.1, rng);
  const CscMatrix a = CscMatrix::from_coo(m);
  const CscMatrix at = a.transposed();
  for (Index j = 0; j < a.n_cols(); ++j) {
    EXPECT_EQ(a.col_degree(j), at.col_degree(j));
  }
}

TEST(TallRectangular, ShapeAndEmptyRows) {
  Rng rng(10);
  const CooMatrix m = tall_rectangular(1000, 200, 5.0, 0.3, rng);
  EXPECT_EQ(m.n_rows, 1000);
  EXPECT_EQ(m.n_cols, 200);
  const GraphStats s = compute_stats(CscMatrix::from_coo(m));
  // At least the reserved 30% of rows stay empty.
  EXPECT_GE(s.empty_rows, 300);
}

TEST(TallRectangular, SkewedTowardLowColumns) {
  Rng rng(11);
  const CooMatrix m = tall_rectangular(500, 100, 20.0, 0.0, rng);
  const CscMatrix a = CscMatrix::from_coo(m);
  Index low = 0, high = 0;
  for (Index j = 0; j < 50; ++j) low += a.col_degree(j);
  for (Index j = 50; j < 100; ++j) high += a.col_degree(j);
  EXPECT_GT(low, high);
}

TEST(Preferential, SkewGrowsWithDegreeProportionalAttachment) {
  Rng rng(12);
  const CooMatrix m = preferential(2000, 8, rng);
  const GraphStats s = compute_stats(CscMatrix::from_coo(m));
  EXPECT_GT(s.max_row_degree, 40);  // hubs emerge
  EXPECT_EQ(s.n_rows, 2000);
}

TEST(Preferential, RejectsBadArgs) {
  Rng rng(13);
  EXPECT_THROW(preferential(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(preferential(5, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
