#include "gen/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matrix/csc.hpp"

namespace mcm {
namespace {

TEST(Suite, HasThirteenDistinctNamedEntries) {
  const auto suite = real_suite();
  EXPECT_EQ(suite.size(), 13u);
  std::set<std::string> names;
  for (const auto& entry : suite) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_FALSE(entry.family.empty());
    EXPECT_FALSE(entry.description.empty());
    names.insert(entry.name);
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(Suite, RepresentativeSubsetMatchesFig3Selection) {
  const auto reps = representative_suite();
  ASSERT_EQ(reps.size(), 4u);
  EXPECT_EQ(reps[0].name, "coPapersDBLP");
  EXPECT_EQ(reps[1].name, "wikipedia-20070206");
  EXPECT_EQ(reps[2].name, "cage15");
  EXPECT_EQ(reps[3].name, "road_usa");
}

TEST(Suite, LookupByNameWorksAndUnknownThrows) {
  EXPECT_EQ(suite_matrix("road_usa").name, "road_usa");
  EXPECT_THROW(suite_matrix("not-a-matrix"), std::invalid_argument);
  EXPECT_THROW(real_suite(0.0), std::invalid_argument);
}

TEST(Suite, EveryEntryBuildsAtTinyScale) {
  // Tiny scale keeps this fast while checking all generators wire up.
  for (const auto& entry : real_suite(0.02)) {
    Rng rng(17);
    const CooMatrix m = entry.build(rng);
    EXPECT_NO_THROW(m.validate()) << entry.name;
    EXPECT_GT(m.nnz(), 0) << entry.name;
    EXPECT_GT(m.n_rows, 0) << entry.name;
  }
}

TEST(Suite, MostEntriesHaveDeficiencyAfterMaximalMatching) {
  // The paper selected matrices with "at least several thousands of
  // unmatched vertices after computing a maximal matching" — the MCM phase
  // must have work to do. At reduced scale we require a nonzero gap between
  // the greedy maximal matching and the true optimum on a majority of the
  // suite.
  int with_gap = 0;
  for (const auto& entry : real_suite(0.05)) {
    Rng rng(23);
    const CooMatrix coo = entry.build(rng);
    const CscMatrix a = CscMatrix::from_coo(coo);
    const Index greedy = greedy_maximal(a).cardinality();
    const Index optimum = maximum_matching_size(a);
    if (optimum > greedy) ++with_gap;
  }
  EXPECT_GE(with_gap, 7) << "too few suite entries exercise augmentation";
}

TEST(Suite, ScaleFactorGrowsInstances) {
  Rng rng1(29), rng2(29);
  const CooMatrix small = suite_matrix("cage15", 0.02).build(rng1);
  const CooMatrix larger = suite_matrix("cage15", 0.08).build(rng2);
  EXPECT_GT(larger.n_rows, small.n_rows);
  EXPECT_GT(larger.nnz(), small.nnz());
}

}  // namespace
}  // namespace mcm
