#include "gen/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

bool same_graph(const CooMatrix& a, const CooMatrix& b) {
  return a.n_rows == b.n_rows && a.n_cols == b.n_cols && a.rows == b.rows
         && a.cols == b.cols;
}

TEST(Workload, SameSeedReplaysIdentically) {
  WorkloadConfig config;
  config.queries = 40;
  config.seed = 99;
  const Workload first = make_workload(config);
  const Workload second = make_workload(config);
  ASSERT_EQ(first.queries.size(), second.queries.size());
  ASSERT_EQ(first.pool.size(), second.pool.size());
  for (std::size_t i = 0; i < first.pool.size(); ++i) {
    EXPECT_TRUE(same_graph(*first.pool[i], *second.pool[i])) << i;
  }
  for (std::size_t q = 0; q < first.queries.size(); ++q) {
    EXPECT_EQ(first.queries[q].arrival_s, second.queries[q].arrival_s) << q;
    EXPECT_EQ(first.queries[q].graph_id, second.queries[q].graph_id) << q;
    EXPECT_EQ(first.queries[q].priority, second.queries[q].priority) << q;
    EXPECT_EQ(first.queries[q].mcm_seed, second.queries[q].mcm_seed) << q;
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig config;
  config.queries = 40;
  config.seed = 1;
  const Workload a = make_workload(config);
  config.seed = 2;
  const Workload b = make_workload(config);
  bool any_difference = false;
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    any_difference = any_difference
                     || a.queries[q].arrival_s != b.queries[q].arrival_s
                     || a.queries[q].graph_id != b.queries[q].graph_id;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, ArrivalsAreNonDecreasingAndPositiveGapsOnAverage) {
  WorkloadConfig config;
  config.queries = 200;
  config.rate_per_s = 100.0;
  const Workload w = make_workload(config);
  ASSERT_EQ(w.queries.size(), 200u);
  double prev = 0;
  for (const WorkloadQuery& q : w.queries) {
    EXPECT_GE(q.arrival_s, prev);
    prev = q.arrival_s;
  }
  // Mean inter-arrival of Exp(rate) is 1/rate; 200 samples stay within a
  // factor of 2 with overwhelming margin.
  const double mean_gap = prev / 200.0;
  EXPECT_GT(mean_gap, 0.5 / config.rate_per_s);
  EXPECT_LT(mean_gap, 2.0 / config.rate_per_s);
}

TEST(Workload, HotFractionSkewsPopularity) {
  WorkloadConfig config;
  config.queries = 300;
  config.graph_pool = 6;
  config.hot_fraction = 1.0;  // every query goes to the hot third
  const Workload w = make_workload(config);
  for (const WorkloadQuery& q : w.queries) {
    EXPECT_LT(q.graph_id, 2);  // hot set = max(1, 6/3) graphs
  }

  config.hot_fraction = 0.0;  // uniform: the cold graphs must appear
  const Workload uniform = make_workload(config);
  std::set<int> seen;
  for (const WorkloadQuery& q : uniform.queries) seen.insert(q.graph_id);
  EXPECT_GT(seen.size(), 2u);
}

TEST(Workload, QueriesShareOptionSeedPerGraph) {
  WorkloadConfig config;
  config.queries = 100;
  const Workload w = make_workload(config);
  for (const WorkloadQuery& q : w.queries) {
    EXPECT_EQ(q.mcm_seed,
              config.seed + static_cast<std::uint64_t>(q.graph_id));
    ASSERT_LT(static_cast<std::size_t>(q.graph_id), w.pool.size());
    EXPECT_EQ(q.graph.get(), w.pool[static_cast<std::size_t>(q.graph_id)].get());
    EXPECT_GE(q.priority, 0);
    EXPECT_LT(q.priority, config.priority_levels);
  }
}

TEST(Workload, MixPresetsProduceExpectedScales) {
  WorkloadConfig config;
  config.queries = 0;
  config.graph_pool = 4;

  config.mix = SizeMix::Small;
  Index small_max = 0;
  for (const auto& g : make_workload(config).pool) {
    small_max = std::max(small_max, std::max(g->n_rows, g->n_cols));
  }

  config.mix = SizeMix::Heavy;
  Index heavy_max = 0;
  for (const auto& g : make_workload(config).pool) {
    heavy_max = std::max(heavy_max, std::max(g->n_rows, g->n_cols));
  }
  EXPECT_LT(small_max, heavy_max);

  // The scale knob grows the scalable instances.
  config.mix = SizeMix::Small;
  config.scale = 3.0;
  Index scaled_max = 0;
  for (const auto& g : make_workload(config).pool) {
    scaled_max = std::max(scaled_max, std::max(g->n_rows, g->n_cols));
  }
  EXPECT_GT(scaled_max, small_max);
}

TEST(Workload, NamesRoundTrip) {
  for (const SizeMix mix :
       {SizeMix::Small, SizeMix::Mixed, SizeMix::Heavy}) {
    EXPECT_EQ(parse_size_mix(size_mix_name(mix)), mix);
  }
  EXPECT_THROW((void)parse_size_mix("giant"), std::invalid_argument);
}

TEST(Churn, SameSeedReplaysIdentically) {
  Rng rng(5);
  const CooMatrix base = er_bipartite_m(20, 24, 60, rng);
  ChurnConfig config;
  config.updates = 50;
  config.seed = 21;
  const std::vector<EdgeUpdate> first = make_churn(base, config);
  const std::vector<EdgeUpdate> second = make_churn(base, config);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 50u);

  config.seed = 22;
  EXPECT_NE(make_churn(base, config), first);
}

TEST(Churn, EveryUpdateIsEffective) {
  // No duplicate inserts, no deletes of absent edges: replay the stream
  // against a live edge set and require each update to change it.
  Rng rng(9);
  const CooMatrix base = er_bipartite_m(15, 15, 40, rng);
  ChurnConfig config;
  config.updates = 80;
  config.insert_fraction = 0.4;
  std::set<std::pair<Index, Index>> present;
  for (Index k = 0; k < base.nnz(); ++k) {
    present.emplace(base.rows[static_cast<std::size_t>(k)],
                    base.cols[static_cast<std::size_t>(k)]);
  }
  for (const EdgeUpdate& u : make_churn(base, config)) {
    ASSERT_GE(u.row, 0);
    ASSERT_LT(u.row, base.n_rows);
    ASSERT_GE(u.col, 0);
    ASSERT_LT(u.col, base.n_cols);
    if (u.kind == UpdateKind::Insert) {
      EXPECT_TRUE(present.emplace(u.row, u.col).second)
          << "duplicate insert (" << u.row << "," << u.col << ")";
    } else {
      EXPECT_EQ(present.erase({u.row, u.col}), 1u)
          << "delete of absent (" << u.row << "," << u.col << ")";
    }
  }
}

TEST(Churn, MixClampsAtFullAndEmptyGraphs) {
  // Complete bipartite graph: nothing to insert, so the stream must open
  // with a delete even at insert_fraction = 1.
  CooMatrix full(3, 3);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 3; ++c) full.add_edge(r, c);
  }
  ChurnConfig config;
  config.updates = 4;
  config.insert_fraction = 1.0;
  const std::vector<EdgeUpdate> from_full = make_churn(full, config);
  ASSERT_FALSE(from_full.empty());
  EXPECT_EQ(from_full.front().kind, UpdateKind::Delete);

  // Empty graph: nothing to delete, so it must open with an insert.
  config.insert_fraction = 0.0;
  const std::vector<EdgeUpdate> from_empty =
      make_churn(CooMatrix(3, 3), config);
  ASSERT_FALSE(from_empty.empty());
  EXPECT_EQ(from_empty.front().kind, UpdateKind::Insert);

  EXPECT_THROW(make_churn(CooMatrix(0, 3), config), std::invalid_argument);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig config;
  config.graph_pool = 0;
  EXPECT_THROW(make_workload(config), std::invalid_argument);
  config = {};
  config.rate_per_s = 0;
  EXPECT_THROW(make_workload(config), std::invalid_argument);
  config = {};
  config.hot_fraction = 1.5;
  EXPECT_THROW(make_workload(config), std::invalid_argument);
  config = {};
  config.priority_levels = 0;
  EXPECT_THROW(make_workload(config), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
