/// Pins the exact charge formulas of the communication model (the same
/// formulas the paper's §IV-B analysis uses). If a change to
/// gridsim/context.cpp alters any of these, every number in EXPERIMENTS.md
/// shifts — this suite makes that impossible to do silently.

#include <gtest/gtest.h>

#include <cmath>

#include "algebra/vertex.hpp"
#include "gridsim/context.hpp"

namespace mcm {
namespace {

SimContext make_ctx(int processes) {
  SimConfig config;
  config.machine = MachineModel::edison();
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

constexpr double kAlpha = 3.0;     // edison preset, microseconds
constexpr double kBeta = 0.004;    // per word

TEST(CostFormulas, RingAllgatherv) {
  SimContext ctx = make_ctx(16);
  // g ranks, W total words: (g-1) a + ((g-1)/g) W b.
  ctx.charge_allgatherv(Cost::Prune, 4, 1, 1000);
  const double expected = 3 * kAlpha + (3.0 / 4.0) * 1000 * kBeta;
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Prune), expected, 1e-9);
}

TEST(CostFormulas, PairwiseAlltoallv) {
  SimContext ctx = make_ctx(16);
  // rounds (g-1) a + W_maxrank b.
  ctx.charge_alltoallv(Cost::Invert, 16, 1, 500, 3);
  const double expected = 3 * 15 * kAlpha + 500 * kBeta;
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Invert), expected, 1e-9);
}

TEST(CostFormulas, RecursiveDoublingAllreduce) {
  SimContext ctx = make_ctx(16);
  // 2 ceil(lg g) (a + w b).
  ctx.charge_allreduce(Cost::Other, 16, 2);
  const double expected = 2 * 4 * (kAlpha + 2 * kBeta);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Other), expected, 1e-9);
}

TEST(CostFormulas, AllreduceNonPowerOfTwoRoundsUp) {
  SimContext ctx = make_ctx(9);
  ctx.charge_allreduce(Cost::Other, 9, 1);
  const double expected = 2 * std::ceil(std::log2(9.0)) * (kAlpha + kBeta);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Other), expected, 1e-9);
}

TEST(CostFormulas, GathervToRoot) {
  SimContext ctx = make_ctx(16);
  // (p-1) a + W_total b, same for scatterv.
  ctx.charge_gatherv_root(Cost::GatherScatter, 16, 10000);
  const double expected = 15 * kAlpha + 10000 * kBeta;
  EXPECT_NEAR(ctx.ledger().time_us(Cost::GatherScatter), expected, 1e-9);
  ctx.charge_scatterv_root(Cost::GatherScatter, 16, 10000);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::GatherScatter), 2 * expected, 1e-9);
}

TEST(CostFormulas, RmaPerOp) {
  SimContext ctx = make_ctx(16);
  // ops a + payload b: every op pays latency, the payload pays bandwidth
  // once (so wire narrowing shrinks the beta term without touching alpha).
  ctx.charge_rma(Cost::Augment, 7, 14);
  const double expected = 7 * kAlpha + 14 * kBeta;
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), expected, 1e-9);
}

TEST(CostFormulas, ComputeChargesUseThreadSpeedup) {
  SimConfig config;
  config.machine = MachineModel::edison();
  config.cores = 48;
  config.threads_per_process = 12;
  SimContext ctx(config);
  ctx.charge_edge_ops(Cost::SpMV, 1000);
  const double speedup = config.machine.thread_speedup(12);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::SpMV),
              1000 * config.machine.edge_op_us / speedup, 1e-9);
  ctx.charge_elem_ops(Cost::Other, 1000);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Other),
              1000 * config.machine.elem_op_us / speedup, 1e-9);
}

TEST(CostFormulas, WordsPerType) {
  EXPECT_EQ(words_per<Index>(), 1u);
  EXPECT_EQ(words_per<Vertex>(), 2u);
  EXPECT_EQ(words_per<char>(), 1u);  // rounded up
}

}  // namespace
}  // namespace mcm
