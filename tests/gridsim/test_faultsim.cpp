/// faultsim suite (DESIGN.md §5.5): the spec grammar, the deterministic
/// scheduling semantics of each fault kind, and the driver-visible
/// contracts — a straggler plan shifts the simulated-time breakdown while
/// leaving the matching bit-identical, transient collective aborts are
/// retried to the same matching as a fault-free run, and exhausted retries
/// surface as a fatal SimFault with an honest report.

#include "gridsim/faultsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/driver.hpp"
#include "gen/rmat.hpp"
#include "gridsim/context.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

CooMatrix test_graph() {
  Rng rng(1);
  RmatParams params = RmatParams::g500(8);
  params.edge_factor = 8.0;
  return rmat(params, rng);
}

PipelineResult run(const CooMatrix& coo, std::shared_ptr<FaultPlan> plan,
                   int cores = 16) {
  SimConfig config;
  config.cores = cores;
  config.threads_per_process = 1;
  config.host_threads = 1;
  PipelineOptions options;
  options.initializer = MaximalKind::None;  // all work in the MCM loop
  options.faults = std::move(plan);
  return run_pipeline(config, coo, options);
}

TEST(FaultSpecParse, AcceptsTheDocumentedGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "straggler:rank=2:from=4:until=12:factor=8;"
      "transient:op=alltoall:step=3:count=2;"
      "crash:step=9",
      /*seed=*/7);
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::Straggler);
  EXPECT_EQ(plan.events()[0].rank, 2);
  EXPECT_EQ(plan.events()[0].from, 4u);
  EXPECT_EQ(plan.events()[0].until, 12u);
  EXPECT_DOUBLE_EQ(plan.events()[0].factor, 8.0);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::Transient);
  EXPECT_EQ(plan.events()[1].op, CollectiveOp::Alltoall);
  EXPECT_EQ(plan.events()[1].step, 3u);
  EXPECT_EQ(plan.events()[1].count, 2);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::Crash);
  EXPECT_EQ(plan.events()[2].step, 9u);
  EXPECT_EQ(plan.seed(), 7u);
  // Comma works as an event separator too (shell-friendlier than ';').
  EXPECT_EQ(FaultPlan::parse("crash:step=1,crash:step=2", 1).events().size(),
            2u);
}

TEST(FaultSpecParse, RefusesMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("meteor:step=1", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash", 1), std::invalid_argument);  // no step
  EXPECT_THROW(FaultPlan::parse("crash:step=x", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash:step", 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("straggler:factor=0.5", 1),
               std::invalid_argument);  // a straggler must slow down
  EXPECT_THROW(FaultPlan::parse("straggler:from=5:until=5", 1),
               std::invalid_argument);  // empty window
  EXPECT_THROW(FaultPlan::parse("transient:count=3", 1),
               std::invalid_argument);  // neither step nor prob
  EXPECT_THROW(FaultPlan::parse("transient:step=1:op=broadcast", 1),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("transient:prob=1.5", 1),
               std::invalid_argument);
}

TEST(FaultPlanStraggler, ScalesOnlyInsideTheWindow) {
  FaultPlan plan = FaultPlan::parse("straggler:from=2:until=5:factor=3", 1);
  for (std::uint64_t step = 0; step < 8; ++step) {
    EXPECT_NO_THROW(plan.begin_superstep(step));  // stragglers never throw
    const bool inside = step >= 2 && step < 5;
    EXPECT_DOUBLE_EQ(plan.time_scale(), inside ? 3.0 : 1.0) << "step " << step;
  }
  EXPECT_EQ(plan.report().straggler_steps, 3u);
}

TEST(FaultPlanStraggler, OverlappingWindowsTakeTheMaxFactor) {
  FaultPlan plan = FaultPlan::parse(
      "straggler:from=0:until=10:factor=2;straggler:from=3:until=5:factor=6",
      1);
  plan.begin_superstep(1);
  EXPECT_DOUBLE_EQ(plan.time_scale(), 2.0);
  plan.begin_superstep(4);
  EXPECT_DOUBLE_EQ(plan.time_scale(), 6.0);  // the slowest rank sets the pace
}

TEST(FaultPlanCrash, FiresAtItsBoundaryExactlyOnce) {
  FaultPlan plan = FaultPlan::parse("crash:step=3", 1);
  plan.begin_superstep(0);
  plan.begin_superstep(1);
  plan.begin_superstep(2);
  try {
    plan.begin_superstep(3);
    FAIL() << "crash did not fire";
  } catch (const SimFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Crash);
    EXPECT_TRUE(fault.fatal());
    EXPECT_EQ(fault.superstep(), 3u);
  }
  EXPECT_EQ(plan.report().crashes, 1u);
  // A resumed plan object replaying the same boundary does not re-crash —
  // the event was consumed.
  plan.begin_superstep(3);
  EXPECT_EQ(plan.report().crashes, 1u);
}

TEST(FaultPlanTransient, AbortsMatchingOpsCountTimes) {
  FaultPlan plan =
      FaultPlan::parse("transient:op=alltoall:step=2:count=2", 1);
  plan.begin_superstep(2);
  // Wrong collective family: untouched.
  EXPECT_NO_THROW(plan.collective_point(CollectiveOp::Allgather, "SPMV"));
  // Matching family: exactly `count` aborts, then clean.
  EXPECT_THROW(plan.collective_point(CollectiveOp::Alltoall, "INVERT"),
               SimFault);
  EXPECT_THROW(plan.collective_point(CollectiveOp::Alltoall, "INVERT"),
               SimFault);
  EXPECT_NO_THROW(plan.collective_point(CollectiveOp::Alltoall, "INVERT"));
  EXPECT_EQ(plan.report().transient_aborts, 2u);
  // Off-step boundaries never abort.
  plan.begin_superstep(3);
  EXPECT_NO_THROW(plan.collective_point(CollectiveOp::Alltoall, "INVERT"));
}

TEST(FaultPlanTransient, NonFatalAndTyped) {
  FaultPlan plan = FaultPlan::parse("transient:op=any:step=0:count=1", 1);
  plan.begin_superstep(0);
  try {
    plan.collective_point(CollectiveOp::Allgather, "PRUNE");
    FAIL() << "transient did not fire";
  } catch (const SimFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Transient);
    EXPECT_FALSE(fault.fatal());
    EXPECT_EQ(fault.site(), "PRUNE");
    EXPECT_EQ(fault.superstep(), 0u);
  }
}

TEST(FaultPlanDeterminism, SameSeedSameDecisions) {
  const auto decisions = [](std::uint64_t seed) {
    FaultPlan plan = FaultPlan::parse("transient:op=any:prob=0.2", seed);
    std::vector<bool> hits;
    for (std::uint64_t step = 0; step < 20; ++step) {
      plan.begin_superstep(step);
      for (int call = 0; call < 5; ++call) {
        bool hit = false;
        try {
          plan.collective_point(CollectiveOp::Allgather, "SPMV");
        } catch (const SimFault&) {
          hit = true;
        }
        hits.push_back(hit);
      }
    }
    return hits;
  };
  const std::vector<bool> a = decisions(11);
  EXPECT_EQ(a, decisions(11));  // reproducible (and resume-replayable)
  EXPECT_NE(a, decisions(12));  // but actually seed-dependent
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultRetry, ChargesFailedAttemptsAndBackoffToTheLedger) {
  SimConfig config;
  config.cores = 16;
  config.threads_per_process = 1;
  SimContext ctx(config);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=0:count=2", 1));
  ctx.set_fault_plan(plan);
  ctx.faults()->begin_superstep(0);
  int calls = 0;
  const int result = with_transient_retry(
      ctx, Cost::SpMV, CollectiveOp::Allgather, "SPMV", [&] { return ++calls; });
  EXPECT_EQ(result, 1);  // the body ran once — aborts happen at entry
  EXPECT_EQ(plan->report().transient_aborts, 2u);
  EXPECT_EQ(plan->report().retries, 2u);
  const RetryPolicy& policy = plan->retry_policy();
  // Two failed attempts: each charges the aborted round's latency within
  // the grid-row group plus the exponential backoff.
  const double aborted = (ctx.grid().pr() - 1) * ctx.alpha();
  const double expected = 2 * aborted + policy.backoff_for(1)
                          + policy.backoff_for(2);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::SpMV), expected);
  EXPECT_DOUBLE_EQ(plan->report().retry_charge_us, expected);
}

TEST(FaultRetry, ExhaustionRethrowsFatal) {
  SimConfig config;
  config.cores = 16;
  config.threads_per_process = 1;
  SimContext ctx(config);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=0:count=99", 1));
  ctx.set_fault_plan(plan);
  ctx.faults()->begin_superstep(0);
  try {
    (void)with_transient_retry(ctx, Cost::SpMV, CollectiveOp::Allgather,
                               "SPMV", [] { return 0; });
    FAIL() << "retries should have been exhausted";
  } catch (const SimFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Transient);
    EXPECT_TRUE(fault.fatal());
  }
  EXPECT_EQ(plan->report().exhausted, 1u);
  EXPECT_EQ(plan->report().transient_aborts,
            static_cast<std::uint64_t>(plan->retry_policy().max_attempts));
}

// --- driver-level contracts ---

TEST(FaultMcm, StragglerShiftsTheBreakdownNotTheMatching) {
  const CooMatrix coo = test_graph();
  const PipelineResult clean = run(coo, nullptr);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("straggler:rank=0:from=0:until=1000:factor=8", 1));
  const PipelineResult slow = run(coo, plan);

  // Results are control-flow invariant: bit-identical matching.
  EXPECT_EQ(clean.matching.mate_r, slow.matching.mate_r);
  EXPECT_EQ(clean.matching.mate_c, slow.matching.mate_c);
  // But the two-clock ledger shifted measurably: every category that did
  // work inside the window is dearer, SpMV visibly so.
  EXPECT_GT(slow.ledger.time_us(Cost::SpMV),
            1.5 * clean.ledger.time_us(Cost::SpMV));
  EXPECT_GT(slow.ledger.total_us(), clean.ledger.total_us());
  // Communication volume is unchanged — stragglers cost time, not words.
  EXPECT_EQ(slow.ledger.total_words(), clean.ledger.total_words());
  EXPECT_GT(plan->report().straggler_steps, 0u);
}

TEST(FaultMcm, TransientAbortsAreRetriedToTheSameMatching) {
  const CooMatrix coo = test_graph();
  const PipelineResult clean = run(coo, nullptr);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=2:count=2", 1));
  const PipelineResult retried = run(coo, plan);

  EXPECT_EQ(clean.matching.mate_r, retried.matching.mate_r);
  EXPECT_EQ(clean.matching.mate_c, retried.matching.mate_c);
  EXPECT_EQ(plan->report().transient_aborts, 2u);
  EXPECT_EQ(plan->report().retries, 2u);
  EXPECT_EQ(plan->report().exhausted, 0u);
  // The re-executed attempts were charged: strictly more simulated time,
  // by exactly the reported retry charge.
  EXPECT_DOUBLE_EQ(retried.ledger.total_us(),
                   clean.ledger.total_us() + plan->report().retry_charge_us);
}

TEST(FaultMcm, ExhaustedRetriesSurfaceAsFatalSimFault) {
  const CooMatrix coo = test_graph();
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=2:count=99", 1));
  try {
    (void)run(coo, plan);
    FAIL() << "expected a fatal SimFault";
  } catch (const SimFault& fault) {
    EXPECT_TRUE(fault.fatal());
    EXPECT_EQ(fault.kind(), FaultKind::Transient);
  }
  EXPECT_EQ(plan->report().exhausted, 1u);
}

TEST(FaultMcm, CrashUnwindsAtItsSuperstepBoundary) {
  const CooMatrix coo = test_graph();
  auto plan =
      std::make_shared<FaultPlan>(FaultPlan::parse("crash:step=4", 1));
  try {
    (void)run(coo, plan);
    FAIL() << "expected a crash";
  } catch (const SimFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Crash);
    EXPECT_EQ(fault.superstep(), 4u);
    EXPECT_TRUE(fault.fatal());
  }
  EXPECT_EQ(plan->report().crashes, 1u);
}

}  // namespace
}  // namespace mcm
