#include "gridsim/host_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gridsim/context.hpp"

namespace mcm {
namespace {

TEST(LaneStats, CountsLoopsItemsAndSlots) {
  HostEngine engine(4);
  ASSERT_EQ(engine.lanes(), 4);

  std::vector<int> out(10, 0);
  engine.for_ranks(10, [&](std::int64_t i, int) { out[i] = 1; });
  engine.for_ranks(2, [&](std::int64_t, int) {});

  const LaneStats s = engine.lane_stats();
  EXPECT_EQ(s.loops, 2u);
  EXPECT_EQ(s.items, 12u);
  // First loop saturates all 4 lanes, second keeps only 2 of 4 busy.
  EXPECT_EQ(s.busy_slots, 4u + 2u);
  EXPECT_EQ(s.total_slots, 8u);
  EXPECT_DOUBLE_EQ(s.occupancy(), 6.0 / 8.0);
}

TEST(LaneStats, EmptyLoopIsNotCounted) {
  HostEngine engine(2);
  engine.for_ranks(0, [](std::int64_t, int) {});
  const LaneStats s = engine.lane_stats();
  EXPECT_EQ(s.loops, 0u);
  EXPECT_EQ(s.total_slots, 0u);
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.0);
}

TEST(LaneStats, ResetClearsCounters) {
  HostEngine engine(2);
  engine.for_ranks(5, [](std::int64_t, int) {});
  engine.reset_lane_stats();
  const LaneStats s = engine.lane_stats();
  EXPECT_EQ(s.loops, 0u);
  EXPECT_EQ(s.items, 0u);
  EXPECT_EQ(s.busy_slots, 0u);
  EXPECT_EQ(s.total_slots, 0u);
}

TEST(LaneStats, AccumulateAcrossEngines) {
  HostEngine a(1);
  HostEngine b(1);
  a.for_ranks(3, [](std::int64_t, int) {});
  b.for_ranks(4, [](std::int64_t, int) {});
  LaneStats total = a.lane_stats();
  total += b.lane_stats();
  EXPECT_EQ(total.loops, 2u);
  EXPECT_EQ(total.items, 7u);
  EXPECT_EQ(total.busy_slots, 2u);
  EXPECT_EQ(total.total_slots, 2u);
}

TEST(LaneStats, DeterministicEngineHasOneLane) {
  HostEngine engine(8, /*deterministic=*/true);
  engine.for_ranks(5, [](std::int64_t, int) {});
  const LaneStats s = engine.lane_stats();
  EXPECT_EQ(s.busy_slots, 1u);
  EXPECT_EQ(s.total_slots, 1u);
  EXPECT_DOUBLE_EQ(s.occupancy(), 1.0);
}

TEST(SimContextSharedEngine, TwoContextsShareOneEngine) {
  SimConfig config;
  config.cores = 4;
  config.threads_per_process = 1;
  auto engine = std::make_shared<HostEngine>(2);
  SimContext first(config, engine);
  SimContext second(config, engine);
  EXPECT_EQ(&first.host(), engine.get());
  EXPECT_EQ(&second.host(), engine.get());
  EXPECT_EQ(first.host_ptr(), second.host_ptr());

  first.host().for_ranks(3, [](std::int64_t, int) {});
  EXPECT_EQ(second.host().lane_stats().loops, 1u);
}

TEST(SimContextSharedEngine, NullEngineThrows) {
  SimConfig config;
  config.cores = 1;
  config.threads_per_process = 1;
  EXPECT_THROW(SimContext(config, nullptr), std::invalid_argument);
}

TEST(SimContextSharedEngine, RebindMovesContextToNewEngine) {
  SimConfig config;
  config.cores = 1;
  config.threads_per_process = 1;
  SimContext ctx(config);
  auto replacement = std::make_shared<HostEngine>(3);
  ctx.set_host_engine(replacement);
  EXPECT_EQ(&ctx.host(), replacement.get());
  EXPECT_EQ(ctx.host().lanes(), 3);
}

}  // namespace
}  // namespace mcm
