#include "gridsim/cost_ledger.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mcm {
namespace {

TEST(Ledger, StartsEmpty) {
  const CostLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.total_us(), 0.0);
  EXPECT_EQ(ledger.total_messages(), 0u);
  EXPECT_EQ(ledger.total_words(), 0u);
}

TEST(Ledger, ChargesAccumulate) {
  CostLedger ledger;
  ledger.charge_time(Cost::SpMV, 5.0);
  ledger.charge_time(Cost::SpMV, 7.0);
  ledger.charge_time(Cost::Invert, 1.0);
  EXPECT_DOUBLE_EQ(ledger.time_us(Cost::SpMV), 12.0);
  EXPECT_DOUBLE_EQ(ledger.time_us(Cost::Invert), 1.0);
  EXPECT_DOUBLE_EQ(ledger.total_us(), 13.0);
}

TEST(Ledger, CommCounters) {
  CostLedger ledger;
  ledger.count_comm(Cost::Prune, 3, 100);
  ledger.count_comm(Cost::Prune, 2, 50);
  EXPECT_EQ(ledger.messages(Cost::Prune), 5u);
  EXPECT_EQ(ledger.words(Cost::Prune), 150u);
  EXPECT_EQ(ledger.total_messages(), 5u);
  EXPECT_EQ(ledger.total_words(), 150u);
}

TEST(Ledger, ResetClearsEverything) {
  CostLedger ledger;
  ledger.charge_time(Cost::Augment, 3.0);
  ledger.count_comm(Cost::Augment, 1, 1);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_us(), 0.0);
  EXPECT_EQ(ledger.total_messages(), 0u);
}

TEST(Ledger, MergeAddsCharges) {
  CostLedger a, b;
  a.charge_time(Cost::SpMV, 1.0);
  b.charge_time(Cost::SpMV, 2.0);
  b.count_comm(Cost::SpMV, 4, 9);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.time_us(Cost::SpMV), 3.0);
  EXPECT_EQ(a.messages(Cost::SpMV), 4u);
  EXPECT_EQ(a.words(Cost::SpMV), 9u);
}

TEST(Ledger, ReportListsNonZeroCategories) {
  CostLedger ledger;
  ledger.charge_time(Cost::SpMV, 1000.0);
  const std::string report = ledger.report();
  EXPECT_NE(report.find("SpMV"), std::string::npos);
  EXPECT_EQ(report.find("PRUNE"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(Ledger, CategoryNames) {
  EXPECT_STREQ(cost_name(Cost::SpMV), "SpMV");
  EXPECT_STREQ(cost_name(Cost::Invert), "INVERT");
  EXPECT_STREQ(cost_name(Cost::Prune), "PRUNE");
  EXPECT_STREQ(cost_name(Cost::Augment), "AUGMENT");
  EXPECT_STREQ(cost_name(Cost::MaximalInit), "MaximalInit");
  EXPECT_STREQ(cost_name(Cost::GatherScatter), "Gather/Scatter");
  EXPECT_STREQ(cost_name(Cost::Other), "Other");
}

}  // namespace
}  // namespace mcm
