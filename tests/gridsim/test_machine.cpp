#include "gridsim/context.hpp"
#include "gridsim/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcm {
namespace {

TEST(Machine, EdisonPresetIsSane) {
  const MachineModel m = MachineModel::edison();
  EXPECT_GT(m.alpha_us, 0);
  EXPECT_GT(m.beta_us_per_word, 0);
  EXPECT_GT(m.edge_op_us, m.elem_op_us);  // traversals dearer than streaming
  EXPECT_EQ(m.cores_per_node, 24);
}

TEST(Machine, ThreadEfficiencyDecreasesButStaysUseful) {
  const MachineModel m = MachineModel::edison();
  EXPECT_DOUBLE_EQ(m.thread_efficiency(1), 1.0);
  EXPECT_LT(m.thread_efficiency(12), 1.0);
  EXPECT_GT(m.thread_efficiency(12), 0.5);
  // Speedup must still be monotone in t.
  EXPECT_GT(m.thread_speedup(12), m.thread_speedup(6));
  EXPECT_GT(m.thread_speedup(6), m.thread_speedup(1));
}

TEST(SimConfig, AutoConfigMatchesPaperSetups) {
  // Paper: "12 threads ... except on 24 cores where each process on a 2x2
  // grid employs 6 threads".
  const SimConfig c24 = SimConfig::auto_config(24, 12);
  EXPECT_EQ(c24.threads_per_process, 6);
  EXPECT_EQ(c24.processes(), 4);

  const SimConfig c48 = SimConfig::auto_config(48, 12);
  EXPECT_EQ(c48.threads_per_process, 12);
  EXPECT_EQ(c48.processes(), 4);

  const SimConfig c972 = SimConfig::auto_config(972, 12);
  EXPECT_EQ(c972.threads_per_process, 12);
  EXPECT_EQ(c972.processes(), 81);

  const SimConfig c12288 = SimConfig::auto_config(12288, 12);
  EXPECT_EQ(c12288.threads_per_process, 12);
  EXPECT_EQ(c12288.processes(), 1024);
}

TEST(SimConfig, FlatMpiConfig) {
  const SimConfig flat = SimConfig::auto_config(1024, 1);
  EXPECT_EQ(flat.threads_per_process, 1);
  EXPECT_EQ(flat.processes(), 1024);
}

TEST(SimConfig, ImpossibleConfigThrows) {
  // 7 cores: no t <= 2 gives a square process count.
  EXPECT_THROW(SimConfig::auto_config(7, 2), std::invalid_argument);
  EXPECT_THROW(SimConfig::auto_config(0, 12), std::invalid_argument);
  EXPECT_THROW(SimConfig::auto_config(24, 0), std::invalid_argument);
}

TEST(SimContext, GridMatchesConfig) {
  const SimContext ctx(SimConfig::auto_config(48, 12));
  EXPECT_EQ(ctx.processes(), 4);
  EXPECT_EQ(ctx.grid().pr(), 2);
  EXPECT_EQ(ctx.threads(), 12);
}

TEST(SimContext, ThreadingAcceleratesLocalKernels) {
  SimConfig flat = SimConfig::auto_config(16, 1);
  SimConfig hybrid = SimConfig::auto_config(64, 4);  // same 16 processes
  const SimContext ctx_flat(flat);
  const SimContext ctx_hybrid(hybrid);
  EXPECT_LT(ctx_hybrid.edge_time_us(), ctx_flat.edge_time_us());
  EXPECT_LT(ctx_hybrid.elem_time_us(), ctx_flat.elem_time_us());
}

TEST(SimContext, ChargesAccumulatePerCategory) {
  SimContext ctx(SimConfig::auto_config(16, 1));
  ctx.charge_edge_ops(Cost::SpMV, 1000);
  ctx.charge_elem_ops(Cost::Invert, 500);
  EXPECT_GT(ctx.ledger().time_us(Cost::SpMV), 0);
  EXPECT_GT(ctx.ledger().time_us(Cost::Invert), 0);
  EXPECT_DOUBLE_EQ(ctx.ledger().time_us(Cost::Prune), 0);
  EXPECT_GT(ctx.ledger().time_us(Cost::SpMV),
            ctx.ledger().time_us(Cost::Invert));
}

TEST(SimContext, CollectiveCostsScaleWithGroupSize) {
  SimContext small(SimConfig::auto_config(4, 1));
  SimContext large(SimConfig::auto_config(64, 1));
  small.charge_allgatherv(Cost::Other, 2, 1, 1000);
  large.charge_allgatherv(Cost::Other, 8, 1, 1000);
  EXPECT_GT(large.ledger().time_us(Cost::Other),
            small.ledger().time_us(Cost::Other));
}

TEST(SimContext, SingleRankCommunicationIsFree) {
  SimContext ctx(SimConfig::auto_config(12, 12));  // 1 process
  ctx.charge_allgatherv(Cost::Other, 1, 1, 1'000'000);
  ctx.charge_alltoallv(Cost::Other, 1, 1, 1'000'000);
  ctx.charge_allreduce(Cost::Other, 1);
  ctx.charge_rma(Cost::Other, 1000, 1);
  EXPECT_DOUBLE_EQ(ctx.ledger().total_us(), 0.0);
}

TEST(SimContext, AlltoallLatencyRoundsMultiply) {
  SimContext a(SimConfig::auto_config(16, 1));
  SimContext b(SimConfig::auto_config(16, 1));
  a.charge_alltoallv(Cost::Invert, 16, 1, 0, 1);
  b.charge_alltoallv(Cost::Invert, 16, 1, 0, 3);
  EXPECT_NEAR(b.ledger().time_us(Cost::Invert),
              3 * a.ledger().time_us(Cost::Invert), 1e-9);
}

TEST(SimContext, RmaCostLinearInOps) {
  SimContext ctx(SimConfig::auto_config(16, 1));
  ctx.charge_rma(Cost::Augment, 10, 10);
  const double ten = ctx.ledger().time_us(Cost::Augment);
  ctx.charge_rma(Cost::Augment, 30, 30);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::Augment), 4 * ten, 1e-9);
}

TEST(SimContext, NonDividingThreadsThrows) {
  SimConfig bad;
  bad.cores = 10;
  bad.threads_per_process = 3;
  EXPECT_THROW(SimContext ctx(bad), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
