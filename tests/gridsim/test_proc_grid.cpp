#include "gridsim/proc_grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcm {
namespace {

TEST(ProcGrid, SquareGrids) {
  for (int p : {1, 4, 9, 16, 25, 144, 1024}) {
    const ProcGrid g = ProcGrid::square(p);
    EXPECT_EQ(g.size(), p);
    EXPECT_EQ(g.pr(), g.pc());
  }
}

TEST(ProcGrid, NonSquareRejected) {
  EXPECT_THROW(ProcGrid::square(2), std::invalid_argument);
  EXPECT_THROW(ProcGrid::square(8), std::invalid_argument);
  EXPECT_THROW(ProcGrid::square(0), std::invalid_argument);
}

TEST(ProcGrid, RankRoundTrip) {
  const ProcGrid g(3, 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int rank = g.rank_of(i, j);
      EXPECT_EQ(g.row_of(rank), i);
      EXPECT_EQ(g.col_of(rank), j);
    }
  }
}

class BlockDistCases
    : public ::testing::TestWithParam<std::pair<Index, int>> {};

TEST_P(BlockDistCases, PartitionIsExactAndBalanced) {
  const auto [n, parts] = GetParam();
  const BlockDist d(n, parts);
  Index total = 0;
  for (int part = 0; part < parts; ++part) {
    EXPECT_EQ(d.offset(part), total);
    total += d.size(part);
    // Balanced: sizes differ by at most one.
    EXPECT_LE(d.size(part), n / parts + 1);
    EXPECT_GE(d.size(part), n / parts);
  }
  EXPECT_EQ(total, n);
}

TEST_P(BlockDistCases, OwnerLocalGlobalRoundTrip) {
  const auto [n, parts] = GetParam();
  const BlockDist d(n, parts);
  for (Index g = 0; g < n; ++g) {
    const int owner = d.owner(g);
    EXPECT_GE(g, d.offset(owner));
    EXPECT_LT(g, d.offset(owner) + d.size(owner));
    EXPECT_EQ(d.to_global(owner, d.to_local(g)), g);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockDistCases,
    ::testing::Values(std::pair<Index, int>{10, 3},
                      std::pair<Index, int>{10, 1},
                      std::pair<Index, int>{7, 7},
                      std::pair<Index, int>{3, 5},   // fewer items than parts
                      std::pair<Index, int>{0, 4},   // empty
                      std::pair<Index, int>{1000, 32}));

TEST(BlockDist, OwnerOutOfRangeThrows) {
  const BlockDist d(10, 2);
  EXPECT_THROW((void)d.owner(10), std::out_of_range);
  EXPECT_THROW((void)d.owner(-1), std::out_of_range);
}

TEST(BlockDist, BadPartThrows) {
  const BlockDist d(10, 2);
  EXPECT_THROW((void)d.size(2), std::out_of_range);
  EXPECT_THROW((void)d.offset(-1), std::out_of_range);
}

TEST(VectorDist, OwnerRoundTrip) {
  for (const auto& [n, segs, parts] :
       {std::tuple<Index, int, int>{100, 4, 3},
        std::tuple<Index, int, int>{17, 3, 5},
        std::tuple<Index, int, int>{5, 5, 5}}) {
    const VectorDist vd(n, segs, parts);
    for (Index g = 0; g < n; ++g) {
      const VectorDist::Owner o = vd.owner(g);
      EXPECT_EQ(vd.to_global(o.segment, o.part, o.local), g);
      EXPECT_LT(o.local, vd.piece_size(o.segment, o.part));
    }
  }
}

TEST(VectorDist, PieceSizesSumToTotal) {
  const VectorDist vd(123, 4, 4);
  Index total = 0;
  for (int s = 0; s < 4; ++s) {
    for (int p = 0; p < 4; ++p) total += vd.piece_size(s, p);
  }
  EXPECT_EQ(total, 123);
}

}  // namespace
}  // namespace mcm
