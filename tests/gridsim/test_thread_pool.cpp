#include "gridsim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gridsim/host_engine.hpp"

namespace mcm {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int lanes : {1, 2, 4, 8}) {
    ThreadPool pool(lanes);
    std::vector<int> counts(1000, 0);
    pool.for_each(0, 1000,
                  [&](std::int64_t i, int) { ++counts[static_cast<std::size_t>(i)]; });
    for (const int c : counts) EXPECT_EQ(c, 1) << "lanes=" << lanes;
  }
}

TEST(ThreadPool, HonorsBeginOffsetAndEmptyRange) {
  ThreadPool pool(4);
  std::vector<int> counts(100, 0);
  pool.for_each(90, 100,
                [&](std::int64_t i, int) { ++counts[static_cast<std::size_t>(i)]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], i >= 90 ? 1 : 0);
  }
  pool.for_each(5, 5, [&](std::int64_t, int) { FAIL() << "empty range ran"; });
  pool.for_each(7, 3, [&](std::int64_t, int) { FAIL() << "negative range ran"; });
}

TEST(ThreadPool, LaneIdsStayInRange) {
  const int lanes = 4;
  ThreadPool pool(lanes);
  std::vector<int> seen_lane(512, -1);
  pool.for_each(0, 512, [&](std::int64_t i, int lane) {
    seen_lane[static_cast<std::size_t>(i)] = lane;
  });
  for (const int lane : seen_lane) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, lanes);
  }
}

// Back-to-back jobs stress the cursor reset: a stale worker from job k must
// never consume an index of job k+1 (each round checks full coverage).
TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::int64_t> out(64, -1);
    pool.for_each(0, 64, [&](std::int64_t i, int) {
      out[static_cast<std::size_t>(i)] = i + round;
    });
    for (std::int64_t i = 0; i < 64; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(i)], i + round)
          << "round " << round;
    }
  }
}

// Worst case for stale-worker wakeups: jobs smaller than the lane count, so
// most workers sleep through each job and wake into a later one holding a
// by-then-destroyed body. Each round's lambda captures a fresh stack vector;
// a stale body executing would write freed memory (caught by ASan/TSan) or
// clobber round tags (caught by the asserts).
TEST(ThreadPool, TinyJobsWithMoreLanesThanWork) {
  ThreadPool pool(8);
  for (std::int64_t round = 0; round < 4000; ++round) {
    std::vector<std::int64_t> out(2, -1);
    pool.for_each(0, 2, [&](std::int64_t i, int) {
      out[static_cast<std::size_t>(i)] = round;
    });
    ASSERT_EQ(out[0], round);
    ASSERT_EQ(out[1], round);
  }
}

TEST(ThreadPool, PropagatesExceptionAndStaysUsable) {
  for (const int lanes : {1, 4}) {
    ThreadPool pool(lanes);
    EXPECT_THROW(pool.for_each(0, 100,
                               [](std::int64_t i, int) {
                                 if (i == 37) throw std::out_of_range("boom");
                               }),
                 std::out_of_range);
    std::vector<int> counts(50, 0);
    pool.for_each(0, 50, [&](std::int64_t i, int) {
      ++counts[static_cast<std::size_t>(i)];
    });
    for (const int c : counts) EXPECT_EQ(c, 1) << "lanes=" << lanes;
  }
}

// Regression: a body that throws early in a huge range must not make the
// surviving threads spin through the remaining indices one fetch_add at a
// time — the error path fast-forwards the cursor in one CAS. Before that fix
// this test took minutes (2^31 increments on one core); with it, the call
// returns in milliseconds with the first exception rethrown.
TEST(ThreadPool, ThrowOnHugeRangeReturnsPromptly) {
  ThreadPool pool(4);
  const std::int64_t huge = std::int64_t{1} << 31;
  EXPECT_THROW(pool.for_each(0, huge,
                             [](std::int64_t i, int) {
                               if (i == 0) throw std::runtime_error("early");
                             }),
               std::runtime_error);
  // The pool's accounting must be intact: the next job runs every index
  // exactly once.
  std::vector<int> counts(64, 0);
  pool.for_each(0, 64, [&](std::int64_t i, int) {
    ++counts[static_cast<std::size_t>(i)];
  });
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPool, NestedCallsRunInlineOnTheSameLane) {
  ThreadPool pool(4);
  std::vector<int> counts(8 * 8, 0);
  std::vector<int> lane_mismatches(8, 0);
  pool.for_each(0, 8, [&](std::int64_t i, int outer_lane) {
    pool.for_each(0, 8, [&](std::int64_t j, int inner_lane) {
      ++counts[static_cast<std::size_t>(i * 8 + j)];
      if (inner_lane != outer_lane) {
        ++lane_mismatches[static_cast<std::size_t>(i)];
      }
    });
  });
  for (const int c : counts) EXPECT_EQ(c, 1);
  for (const int m : lane_mismatches) EXPECT_EQ(m, 0);
}

TEST(ThreadPool, ClampsLaneCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1);
  std::vector<int> counts(10, 0);
  pool.for_each(0, 10, [&](std::int64_t i, int lane) {
    EXPECT_EQ(lane, 0);
    ++counts[static_cast<std::size_t>(i)];
  });
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(ScratchTag, DistinctPurposeStringsGetDistinctTags) {
  static_assert(scratch_tag("fold.entries") != scratch_tag("fold.sort_tmp"));
  static_assert(scratch_tag("a") != scratch_tag("b"));
  static_assert(scratch_key(scratch_tag("spa"), 100)
                != scratch_key(scratch_tag("spa"), 101));
}

TEST(ScratchLane, GetCachesByTypeAndTag) {
  ScratchLane lane;
  auto& a = lane.get<std::vector<int>>(scratch_tag("x"));
  auto& b = lane.get<std::vector<int>>(scratch_tag("x"));
  EXPECT_EQ(&a, &b);
  auto& c = lane.get<std::vector<int>>(scratch_tag("y"));
  EXPECT_NE(&a, &c);
  // Same tag, different type: distinct slot.
  auto& d = lane.get<std::vector<double>>(scratch_tag("x"));
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&d));
}

TEST(ScratchLane, GetForwardsConstructorArguments) {
  ScratchLane lane;
  auto& v = lane.get<std::vector<int>>(scratch_tag("sized"), 17, 3);
  EXPECT_EQ(v.size(), 17u);
  EXPECT_EQ(v[0], 3);
}

TEST(ScratchLane, BufferHandsOutClearedWithCapacityRetained) {
  ScratchLane lane;
  auto& v = lane.buffer<int>(scratch_tag("buf"));
  v.resize(1000);
  const std::size_t capacity = v.capacity();
  auto& again = lane.buffer<int>(scratch_tag("buf"));
  EXPECT_EQ(&v, &again);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), capacity);
}

TEST(HostEngine, DeterministicModeForcesOneLane) {
  HostEngine engine(8, /*deterministic=*/true);
  EXPECT_EQ(engine.lanes(), 1);
  EXPECT_TRUE(engine.deterministic());
  // Deterministic runs visit indices in order on lane 0.
  std::vector<std::int64_t> order;
  engine.for_ranks(16, [&](std::int64_t i, int lane) {
    EXPECT_EQ(lane, 0);
    order.push_back(i);
  });
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(HostEngine, ScratchLanesAreDistinctPerLane) {
  HostEngine engine(4);
  ASSERT_EQ(engine.lanes(), 4);
  EXPECT_NE(&engine.scratch(0), &engine.scratch(1));
  EXPECT_NE(&engine.scratch(0), &engine.shared());
}

}  // namespace
}  // namespace mcm
