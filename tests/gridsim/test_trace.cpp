#include "gridsim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "core/driver.hpp"
#include "dist/gather.hpp"
#include "dist/rma.hpp"
#include "gen/rmat.hpp"
#include "gridsim/context.hpp"

namespace mcm {
namespace {

using testing::JsonValidator;

SimContext make_ctx(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return SimContext(config);
}

/// Every test runs with tracing on and a fresh event buffer, and leaves the
/// global mode off so the other suites in this binary are unaffected.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::kCompiledIn) {
      GTEST_SKIP() << "mcmtrace compiled out (MCM_TRACE=OFF)";
    }
    trace::set_mode(TraceMode::On);
    trace::tracer().clear();
  }
  void TearDown() override {
    trace::set_mode(TraceMode::Off);
    trace::tracer().clear();
  }
};

TEST(TraceMode, ParsesNamesAndRejectsGarbage) {
  EXPECT_EQ(trace::mode_from_string("off"), TraceMode::Off);
  EXPECT_EQ(trace::mode_from_string("on"), TraceMode::On);
  EXPECT_EQ(trace::mode_from_string("true"), TraceMode::On);
  EXPECT_EQ(trace::mode_from_string("1"), TraceMode::On);
  EXPECT_THROW((void)trace::mode_from_string("loud"), std::invalid_argument);
  EXPECT_STREQ(trace::mode_name(TraceMode::Off), "off");
  EXPECT_STREQ(trace::mode_name(TraceMode::On), "on");
}

TEST_F(TraceTest, SpanRecordsBothClocks) {
  SimContext ctx = make_ctx(4);
  {
    trace::Span span(ctx, "WORK", Cost::SpMV, trace::Kind::Primitive);
    ctx.ledger().charge_time(Cost::SpMV, 5.0);
  }
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  const trace::TraceEvent& e = events[0];
  EXPECT_STREQ(e.name, "WORK");
  EXPECT_EQ(e.kind, trace::Kind::Primitive);
  EXPECT_TRUE(e.counted);
  EXPECT_GE(e.sim_ts_us, 0.0);
  EXPECT_NEAR(e.sim_dur_us, 5.0, 1e-9);  // simulated clock: exact charge
  EXPECT_GE(e.host_dur_us, 0.0);         // host clock: whatever wall time took
}

TEST_F(TraceTest, OnlyOutermostPrimitiveIsCounted) {
  SimContext ctx = make_ctx(4);
  {
    trace::Span outer(ctx, "OUTER", Cost::Augment, trace::Kind::Primitive);
    ctx.ledger().charge_time(Cost::Augment, 2.0);
    {
      trace::Span inner(ctx, "INNER", Cost::Invert, trace::Kind::Primitive);
      ctx.ledger().charge_time(Cost::Augment, 3.0);
    }
  }
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_EQ(events.size(), 2u);  // inner closes (and records) first
  EXPECT_STREQ(events[0].name, "INNER");
  EXPECT_FALSE(events[0].counted);
  EXPECT_STREQ(events[1].name, "OUTER");
  EXPECT_TRUE(events[1].counted);
  // The breakdown must attribute the full 5 us once, to the outer span.
  for (const trace::BreakdownRow& row : trace::tracer().breakdown()) {
    if (row.category == Cost::Augment) {
      EXPECT_EQ(row.spans, 1u);
      EXPECT_NEAR(row.sim_us, 5.0, 1e-9);
    } else {
      EXPECT_EQ(row.spans, 0u);
      EXPECT_NEAR(row.sim_us, 0.0, 1e-9);
    }
  }
}

TEST_F(TraceTest, RankTaskSimIntervalBackfilledByEnclosingSpan) {
  SimContext ctx = make_ctx(4);
  {
    trace::Span span(ctx, "PRIM", Cost::Prune, trace::Kind::Primitive);
    ctx.ledger().charge_time(Cost::Prune, 1.5);
    { trace::RankSpan task("PRIM.body", Cost::Prune, /*rank=*/2, /*lane=*/0); }
    ctx.ledger().charge_time(Cost::Prune, 2.5);
  }
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_EQ(events.size(), 2u);
  const trace::TraceEvent& task = events[0];
  ASSERT_EQ(task.kind, trace::Kind::RankTask);
  EXPECT_STREQ(task.name, "PRIM.body");
  EXPECT_EQ(task.rank, 2);
  EXPECT_EQ(task.lane, 0);
  // The lane cannot know simulated time; the closing span back-fills its own
  // interval so the task renders on the simulated tracks too.
  EXPECT_GE(task.sim_ts_us, 0.0);
  EXPECT_NEAR(task.sim_dur_us, 4.0, 1e-9);
  EXPECT_NEAR(task.sim_ts_us, events[1].sim_ts_us, 1e-9);
}

TEST_F(TraceTest, RmaEpochProducesPhaseSpan) {
  SimContext ctx = make_ctx(4);
  DistDenseVec<Index> v(ctx, VSpace::Row, 16, kNull);
  RmaWindow<Index> win(ctx, v);
  win.open_epoch(Cost::Augment);
  win.put(1, 3, 7);
  win.flush(Cost::Augment);
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  // flush() also records the wire_words_* counters; the epoch span is the
  // single Phase event among them.
  const trace::TraceEvent* epoch = nullptr;
  int phases = 0;
  for (const trace::TraceEvent& event : events) {
    if (event.kind == trace::Kind::Phase) {
      ++phases;
      epoch = &event;
    }
  }
  ASSERT_EQ(phases, 1);
  EXPECT_STREQ(epoch->name, "RMA.epoch");
  EXPECT_EQ(epoch->category, Cost::Augment);
  // flush() charges inside the epoch span, so the span has simulated width.
  EXPECT_GT(epoch->sim_dur_us, 0.0);
}

// The gather/scatter strawman (Fig. 9) lives outside the default pipeline,
// so its primitives get a direct check: both record counted spans in the
// GatherScatter category.
TEST_F(TraceTest, GatherScatterPrimitivesRecorded) {
  SimContext ctx = make_ctx(4);
  CooMatrix coo(8, 8);
  for (Index i = 0; i < 8; ++i) coo.add_edge(i, (i + 1) % 8);
  const DistMatrix a = DistMatrix::distribute(ctx, coo);
  (void)gather_matrix_to_root(ctx, a);
  const std::vector<Index> mates(8, kNull);
  (void)scatter_mates_from_root(ctx, mates, mates);
  std::set<std::string> names;
  for (const trace::TraceEvent& e : trace::tracer().events()) {
    if (e.kind == trace::Kind::Primitive) {
      EXPECT_EQ(e.category, Cost::GatherScatter) << e.name;
      EXPECT_TRUE(e.counted) << e.name;
      EXPECT_GT(e.sim_dur_us, 0.0) << e.name;
      names.insert(e.name);
    }
  }
  EXPECT_EQ(names.count("GATHER"), 1u);
  EXPECT_EQ(names.count("SCATTER"), 1u);
}

TEST_F(TraceTest, CounterSamplesSimulatedClock) {
  SimContext ctx = make_ctx(4);
  ctx.ledger().charge_time(Cost::Other, 9.0);
  trace::counter(ctx, "frontier_nnz", 123.0);
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, trace::Kind::Counter);
  EXPECT_NEAR(events[0].value, 123.0, 0.0);
  EXPECT_NEAR(events[0].sim_ts_us, 9.0, 1e-9);
}

TEST_F(TraceTest, ModeOffRecordsNothing) {
  trace::set_mode(TraceMode::Off);
  SimContext ctx = make_ctx(4);
  {
    trace::Span span(ctx, "WORK", Cost::SpMV, trace::Kind::Primitive);
    trace::RankSpan task("WORK.body", Cost::SpMV, 0, 0);
    trace::counter(ctx, "n", 1.0);
    ctx.ledger().charge_time(Cost::SpMV, 5.0);
  }
  EXPECT_EQ(trace::tracer().event_count(), 0u);
  // The ledger is unaffected by the trace mode.
  EXPECT_NEAR(ctx.ledger().time_us(Cost::SpMV), 5.0, 1e-9);
}

TEST_F(TraceTest, ClearDropsEventsAndRestartsEpoch) {
  SimContext ctx = make_ctx(4);
  { trace::Span span(ctx, "A", Cost::Other, trace::Kind::Region); }
  ASSERT_EQ(trace::tracer().event_count(), 1u);
  trace::tracer().clear();
  EXPECT_EQ(trace::tracer().event_count(), 0u);
  { trace::Span span(ctx, "B", Cost::Other, trace::Kind::Region); }
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  // Fresh epoch: the new span's host timestamp restarts near zero rather
  // than continuing the old epoch.
  EXPECT_LT(events[0].host_ts_us, 1e6);
}

// --- fault-retry charges under trace ---
// Regression: the backoff charge of an aborted round used to open a
// Region-kind span, so it landed only in the "(untraced)" residual and the
// per-category sim column could not reconcile with the ledger.

TEST_F(TraceTest, TopLevelRetryChargeIsCountedInItsCategory) {
  SimContext ctx = make_ctx(16);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=0:count=1", 1));
  ctx.set_fault_plan(plan);
  ctx.faults()->begin_superstep(0);
  (void)with_transient_retry(ctx, Cost::SpMV, CollectiveOp::Allgather, "SPMV",
                             [] { return 0; });
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  const trace::TraceEvent* retry = nullptr;
  for (const trace::TraceEvent& e : events) {
    if (std::string(e.name) == "FAULT.retry") retry = &e;
  }
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->kind, trace::Kind::Primitive);
  EXPECT_TRUE(retry->counted);  // top level: the charge has a home row
  EXPECT_GT(retry->sim_dur_us, 0.0);
  // The SpMV breakdown row carries the full backoff charge, and the traced
  // total reconciles with the ledger — nothing in "(untraced)".
  double traced = 0;
  for (const trace::BreakdownRow& row : trace::tracer().breakdown()) {
    if (row.category == Cost::SpMV) {
      EXPECT_NEAR(row.sim_us, ctx.ledger().time_us(Cost::SpMV), 1e-9);
    }
    traced += row.sim_us;
  }
  EXPECT_NEAR(traced, ctx.ledger().total_us(), 1e-9);
}

TEST_F(TraceTest, NestedRetryChargeIsNotDoubleCounted) {
  SimContext ctx = make_ctx(16);
  auto plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("transient:op=any:step=0:count=1", 1));
  ctx.set_fault_plan(plan);
  ctx.faults()->begin_superstep(0);
  {
    // The driver wraps whole primitives, so the abort usually fires inside
    // an already-open counted span; the retry span must then stay un-counted
    // or the charge would appear in two breakdown rows.
    trace::Span outer(ctx, "SPMV", Cost::SpMV, trace::Kind::Primitive);
    (void)with_transient_retry(ctx, Cost::SpMV, CollectiveOp::Allgather,
                               "SPMV", [] { return 0; });
  }
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  const trace::TraceEvent* retry = nullptr;
  for (const trace::TraceEvent& e : events) {
    if (std::string(e.name) == "FAULT.retry") retry = &e;
  }
  ASSERT_NE(retry, nullptr);
  EXPECT_FALSE(retry->counted);
  double traced = 0;
  for (const trace::BreakdownRow& row : trace::tracer().breakdown()) {
    traced += row.sim_us;
  }
  EXPECT_NEAR(traced, ctx.ledger().total_us(), 1e-9);
  EXPECT_NEAR(ctx.ledger().time_us(Cost::SpMV), plan->report().retry_charge_us,
              1e-9);
}

// End-to-end: a small pipeline run must produce a well-formed two-clock
// trace covering the paper's primitives, and the breakdown must reconcile
// with the cost ledger (the Fig. 5 acceptance criterion).
class TracePipelineTest : public TraceTest {
 protected:
  void run() {
    Rng rng(7);
    RmatParams params = RmatParams::g500(6);
    params.edge_factor = 8.0;
    const CooMatrix coo = rmat(params, rng);
    SimConfig config = SimConfig::auto_config(16, 4);
    PipelineOptions options;
    result_ = run_pipeline(config, coo, options);
  }
  PipelineResult result_;
};

TEST_F(TracePipelineTest, PipelineEmitsPrimitiveSpansOnBothClocks) {
  run();
  const std::vector<trace::TraceEvent> events = trace::tracer().events();
  ASSERT_GT(events.size(), 0u);
  std::set<std::string> names;
  for (const trace::TraceEvent& e : events) names.insert(e.name);
  // The distributed primitives of the paper's algorithm, plus the phase
  // machinery around them.
  for (const char* required :
       {"SPMV", "FOLD", "INVERT", "SELECT", "PRUNE", "MCM-DIST",
        "MCM-DIST.bfs-iteration", "frontier_nnz", "INIT", "MCM"}) {
    EXPECT_TRUE(names.count(required) == 1) << "missing span " << required;
  }
  // Every span event carries both clocks.
  for (const trace::TraceEvent& e : events) {
    if (e.kind == trace::Kind::Counter) continue;
    EXPECT_GE(e.sim_ts_us, 0.0) << e.name;
    EXPECT_GE(e.sim_dur_us, 0.0) << e.name;
    EXPECT_GE(e.host_dur_us, 0.0) << e.name;
  }
}

TEST_F(TracePipelineTest, BreakdownReconcilesWithLedger) {
  run();
  const CostLedger& ledger = result_.ledger;
  double traced = 0;
  for (const trace::BreakdownRow& row : trace::tracer().breakdown()) {
    // A counted span's charges all land in its own category here, so the
    // traced time can never exceed what the ledger recorded for it.
    EXPECT_LE(row.sim_us, ledger.time_us(row.category) + 1e-6)
        << cost_name(row.category);
    traced += row.sim_us;
  }
  EXPECT_LE(traced, ledger.total_us() + 1e-6);
  // Every charge in the pipeline is made under some counted primitive span,
  // so the traced total matches the ledger total and the "(untraced)"
  // residual row is zero.
  EXPECT_NEAR(traced, ledger.total_us(), 1e-6);
  const std::string table = trace::tracer().breakdown_table(ledger);
  EXPECT_NE(table.find("(untraced)"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST_F(TracePipelineTest, ChromeTraceExportIsValidJson) {
  run();
  const std::string json = trace::tracer().chrome_trace_json();
  EXPECT_TRUE(JsonValidator::valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"simulated\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"host\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
}

TEST_F(TracePipelineTest, CoordinatorSpansNestOrAreDisjoint) {
  run();
  // Coordinator-level spans open and close on one thread, so on the host
  // clock any two either nest or do not overlap; partial overlap would make
  // the Perfetto tracks unreadable and indicates broken begin/end pairing.
  // RMA epochs are the one exception: several windows hold epochs open at
  // once and flush in arbitrary order, so their spans legitimately
  // interleave.
  std::vector<trace::TraceEvent> spans;
  for (const trace::TraceEvent& e : trace::tracer().events()) {
    if (e.kind != trace::Kind::Counter && e.kind != trace::Kind::RankTask &&
        std::string(e.name) != "RMA.epoch") {
      spans.push_back(e);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
              if (a.host_ts_us != b.host_ts_us) {
                return a.host_ts_us < b.host_ts_us;
              }
              return a.host_dur_us > b.host_dur_us;
            });
  std::vector<double> open_ends;  // stack of enclosing span end times
  const double eps = 1e-3;        // clock quantisation slack, microseconds
  for (const trace::TraceEvent& e : spans) {
    const double begin = e.host_ts_us;
    const double end = e.host_ts_us + e.host_dur_us;
    while (!open_ends.empty() && open_ends.back() <= begin + eps) {
      open_ends.pop_back();
    }
    if (!open_ends.empty()) {
      EXPECT_LE(end, open_ends.back() + eps)
          << e.name << " partially overlaps an enclosing span";
    }
    open_ends.push_back(end);
  }
}

}  // namespace
}  // namespace mcm
