#include "matching/dulmage_mendelsohn.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

TEST(StructuralRank, MatchesKnownValues) {
  CooMatrix identity(4, 4);
  for (Index i = 0; i < 4; ++i) identity.add_edge(i, i);
  EXPECT_EQ(structural_rank(CscMatrix::from_coo(identity)), 4);

  CooMatrix star(5, 5);
  for (Index i = 0; i < 5; ++i) star.add_edge(i, 0);
  EXPECT_EQ(structural_rank(CscMatrix::from_coo(star)), 1);

  EXPECT_EQ(structural_rank(CscMatrix::from_coo(CooMatrix(3, 7))), 0);
}

TEST(ZeroFreeDiagonal, PermutesNonzerosOntoDiagonal) {
  // Anti-diagonal matrix: reversing rows fixes the diagonal.
  CooMatrix anti(3, 3);
  anti.add_edge(0, 2);
  anti.add_edge(1, 1);
  anti.add_edge(2, 0);
  const CscMatrix a = CscMatrix::from_coo(anti);
  const Matching m = hopcroft_karp(a);
  const Permutation perm = zero_free_diagonal_rows(a, m);
  const CooMatrix permuted = permute(anti, perm, Permutation::identity(3));
  const CscMatrix pa = CscMatrix::from_coo(permuted);
  for (Index i = 0; i < 3; ++i) EXPECT_TRUE(pa.has_entry(i, i));
}

TEST(ZeroFreeDiagonal, RejectsRectangular) {
  CooMatrix rect(2, 3);
  rect.add_edge(0, 0);
  const CscMatrix a = CscMatrix::from_coo(rect);
  EXPECT_THROW((void)zero_free_diagonal_rows(a, Matching(2, 3)),
               std::invalid_argument);
}

TEST(ZeroFreeDiagonal, RejectsStructurallySingular) {
  CooMatrix singular(2, 2);
  singular.add_edge(0, 0);
  singular.add_edge(1, 0);  // column 1 empty
  const CscMatrix a = CscMatrix::from_coo(singular);
  const Matching m = hopcroft_karp(a);
  EXPECT_THROW((void)zero_free_diagonal_rows(a, m), std::invalid_argument);
}

TEST(DulmageMendelsohn, KnownDecomposition) {
  // rows r0,r1; cols c0..c2. Edges: r0-c0, r0-c1, r1-c1, r1-c2 plus an extra
  // row r2 with no edges. MCM = 2; one column must stay unmatched.
  CooMatrix coo(3, 3);
  coo.add_edge(0, 0);
  coo.add_edge(0, 1);
  coo.add_edge(1, 1);
  coo.add_edge(1, 2);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const Matching m = hopcroft_karp(a);
  const DmDecomposition dm = dulmage_mendelsohn(a, m);
  // r2 is an unmatched empty row -> Vertical. One column is unmatched and
  // drags its whole alternating component Horizontal.
  EXPECT_EQ(dm.row_part[2], DmPart::Vertical);
  EXPECT_EQ(dm.count_cols(DmPart::Horizontal), 3);
  EXPECT_EQ(dm.count_rows(DmPart::Horizontal), 2);
}

TEST(DulmageMendelsohn, PerfectMatchingIsAllSquare) {
  CooMatrix coo(3, 3);
  for (Index i = 0; i < 3; ++i) coo.add_edge(i, i);
  coo.add_edge(0, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const DmDecomposition dm = dulmage_mendelsohn(a, hopcroft_karp(a));
  EXPECT_EQ(dm.count_rows(DmPart::Square), 3);
  EXPECT_EQ(dm.count_cols(DmPart::Square), 3);
}

TEST(DulmageMendelsohn, RejectsNonMaximumMatching) {
  // Empty matching on a graph with edges: augmenting path exists.
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_THROW((void)dulmage_mendelsohn(a, Matching(2, 2)),
               std::invalid_argument);
}

class DmOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(DmOnCorpus, InvariantsHold) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = hopcroft_karp(a);
  const DmDecomposition dm = dulmage_mendelsohn(a, m);

  // Unmatched vertices land in their canonical parts.
  for (Index j = 0; j < a.n_cols(); ++j) {
    if (m.mate_c[static_cast<std::size_t>(j)] == kNull) {
      EXPECT_EQ(dm.col_part[static_cast<std::size_t>(j)], DmPart::Horizontal);
    }
  }
  for (Index i = 0; i < a.n_rows(); ++i) {
    if (m.mate_r[static_cast<std::size_t>(i)] == kNull) {
      EXPECT_EQ(dm.row_part[static_cast<std::size_t>(i)], DmPart::Vertical);
    }
  }
  // Matched pairs share a part.
  for (Index j = 0; j < a.n_cols(); ++j) {
    const Index i = m.mate_c[static_cast<std::size_t>(j)];
    if (i != kNull) {
      EXPECT_EQ(dm.row_part[static_cast<std::size_t>(i)],
                dm.col_part[static_cast<std::size_t>(j)]);
    }
  }
  // Block-triangular zero structure: a Horizontal column only neighbors
  // Horizontal rows; a Square column never neighbors a ... (Square columns
  // may neighbor Vertical rows? No: a Vertical row reaches all its columns,
  // so any column adjacent to a Vertical row is Vertical.)
  for (Index j = 0; j < a.n_cols(); ++j) {
    for (Index k = a.col_begin(j); k < a.col_end(j); ++k) {
      const Index i = a.row_at(k);
      if (dm.col_part[static_cast<std::size_t>(j)] == DmPart::Horizontal) {
        EXPECT_EQ(dm.row_part[static_cast<std::size_t>(i)], DmPart::Horizontal)
            << "edge (" << i << "," << j << ")";
      }
      if (dm.row_part[static_cast<std::size_t>(i)] == DmPart::Vertical) {
        EXPECT_EQ(dm.col_part[static_cast<std::size_t>(j)], DmPart::Vertical)
            << "edge (" << i << "," << j << ")";
      }
    }
  }
  // Square part is perfectly matched within itself.
  EXPECT_EQ(dm.count_rows(DmPart::Square), dm.count_cols(DmPart::Square));
  // Cardinality decomposes: every Horizontal row, Square row/col pair and
  // Vertical column is matched.
  EXPECT_EQ(m.cardinality(), dm.count_rows(DmPart::Horizontal)
                                 + dm.count_rows(DmPart::Square)
                                 + dm.count_cols(DmPart::Vertical));
}

TEST_P(DmOnCorpus, HallViolatorWitnessesDeficiency) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = hopcroft_karp(a);
  const Index deficiency = unmatched_cols(m);
  const std::vector<Index> violator = hall_violator(a, m);
  if (deficiency == 0) {
    EXPECT_TRUE(violator.empty());
    return;
  }
  ASSERT_FALSE(violator.empty());
  // Compute N(S) and check |S| - |N(S)| equals the deficiency exactly
  // (the horizontal part is the *maximum* violator).
  std::vector<bool> neighbor(static_cast<std::size_t>(a.n_rows()), false);
  Index neighbor_count = 0;
  for (const Index j : violator) {
    for (Index k = a.col_begin(j); k < a.col_end(j); ++k) {
      const Index i = a.row_at(k);
      if (!neighbor[static_cast<std::size_t>(i)]) {
        neighbor[static_cast<std::size_t>(i)] = true;
        ++neighbor_count;
      }
    }
  }
  EXPECT_EQ(static_cast<Index>(violator.size()) - neighbor_count, deficiency);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DmOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mcm
