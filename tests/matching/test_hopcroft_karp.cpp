#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "gen/er.hpp"
#include "matching/maximal.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

TEST(HopcroftKarp, EmptyGraph) {
  const CscMatrix a = CscMatrix::from_coo(CooMatrix(3, 4));
  const Matching m = hopcroft_karp(a);
  EXPECT_EQ(m.cardinality(), 0);
}

TEST(HopcroftKarp, SingleEdge) {
  CooMatrix coo(1, 1);
  coo.add_edge(0, 0);
  const Matching m = hopcroft_karp(CscMatrix::from_coo(coo));
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  CooMatrix coo(6, 6);
  for (Index i = 0; i < 6; ++i) coo.add_edge(i, i);
  EXPECT_EQ(hopcroft_karp(CscMatrix::from_coo(coo)).cardinality(), 6);
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  CooMatrix coo(5, 5);
  for (Index i = 0; i < 5; ++i) coo.add_edge(i, 0);
  EXPECT_EQ(hopcroft_karp(CscMatrix::from_coo(coo)).cardinality(), 1);
}

TEST(HopcroftKarp, NeedsAugmentation) {
  // Greedy-adversarial instance: column order would trap a naive matcher.
  // c0-{r0,r1}, c1-{r0}: optimum 2, greedy on c0 taking r0 needs an
  // augmenting path.
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 0);
  coo.add_edge(0, 1);
  const Matching m = hopcroft_karp(CscMatrix::from_coo(coo));
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(HopcroftKarp, KnownDeficientGraph) {
  // 3 columns all adjacent only to 2 rows: MCM = 2 (König).
  CooMatrix coo(2, 3);
  for (Index j = 0; j < 3; ++j) {
    coo.add_edge(0, j);
    coo.add_edge(1, j);
  }
  EXPECT_EQ(hopcroft_karp(CscMatrix::from_coo(coo)).cardinality(), 2);
}

TEST(HopcroftKarp, PlantedPerfectMatchingFound) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const CooMatrix coo = planted_perfect(60, 150, rng);
    EXPECT_EQ(hopcroft_karp(CscMatrix::from_coo(coo)).cardinality(), 60);
  }
}

class HopcroftKarpOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(HopcroftKarpOnCorpus, ProducesCertifiedMaximumMatching) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = hopcroft_karp(a);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
}

TEST_P(HopcroftKarpOnCorpus, WarmStartFromMaximalGivesSameCardinality) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index cold = hopcroft_karp(a).cardinality();
  const Matching warm_init = greedy_maximal(a);
  const Matching warm = hopcroft_karp(a, warm_init);
  EXPECT_EQ(warm.cardinality(), cold);
  EXPECT_TRUE(verify_valid(a, warm));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HopcroftKarpOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(HopcroftKarp, MismatchedInitialThrows) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  EXPECT_THROW(hopcroft_karp(CscMatrix::from_coo(coo), Matching(3, 3)),
               std::invalid_argument);
}

TEST(HopcroftKarp, DeepAugmentingPathsDoNotOverflow) {
  // A long alternating chain: c_i - r_i and c_{i+1} - r_i force augmenting
  // paths of length Theta(n) in the final phase. Guards the iterative DFS.
  const Index n = 50000;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add_edge(i, i);
  for (Index i = 0; i + 1 < n; ++i) coo.add_edge(i, i + 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  // Adversarial warm start: match c_{i+1} to r_i everywhere, leaving c_0
  // and r_{n-1} free with a single augmenting path through every vertex.
  Matching init(n, n);
  for (Index i = 0; i + 1 < n; ++i) init.match(i, i + 1);
  const Matching m = hopcroft_karp(a, init);
  EXPECT_EQ(m.cardinality(), n);
}

}  // namespace
}  // namespace mcm
