/// Cross-cutting property tests that don't belong to a single algorithm:
/// label-invariance of the matching problem, work-count identities of the
/// algebraic kernels, and generator bijection properties.

#include <gtest/gtest.h>

#include <set>

#include "../test_helpers.hpp"
#include "algebra/semiring.hpp"
#include "algebra/spmv.hpp"
#include "gen/rmat.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matching/msbfs_seq.hpp"
#include "matching/pothen_fan.hpp"
#include "matrix/permute.hpp"
#include "util/timer.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

class InvariantsOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(InvariantsOnCorpus, CardinalityInvariantUnderRelabeling) {
  // Relabeling vertices (row/column permutations) cannot change the maximum
  // matching cardinality — for every sequential solver.
  const CooMatrix& original = GetParam().coo;
  Rng rng(11);
  const Permutation pr = Permutation::random(original.n_rows, rng);
  const Permutation pc = Permutation::random(original.n_cols, rng);
  const CooMatrix permuted = permute(original, pr, pc);

  const CscMatrix a = CscMatrix::from_coo(original);
  const CscMatrix b = CscMatrix::from_coo(permuted);
  const Index optimum = maximum_matching_size(a);
  EXPECT_EQ(maximum_matching_size(b), optimum);
  EXPECT_EQ(pothen_fan(b).cardinality(), optimum);
  EXPECT_EQ(msbfs_maximum(b, Matching(b.n_rows(), b.n_cols())).cardinality(),
            optimum);
}

TEST_P(InvariantsOnCorpus, SpmvWorkEqualsFrontierDegreeSum) {
  // Table I: SpMV's cost is the sum of the frontier columns' degrees; the
  // flops counter must report exactly that.
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  Rng rng(5);
  SpVec<Vertex> frontier(a.n_cols());
  std::uint64_t expected = 0;
  for (Index j = 0; j < a.n_cols(); ++j) {
    if (rng.next_bool(0.5)) {
      frontier.push_back(j, Vertex(j, j));
      expected += static_cast<std::uint64_t>(a.col_degree(j));
    }
  }
  std::uint64_t flops = 0;
  (void)spmv(a, frontier, Select2ndMinParent{}, &flops);
  EXPECT_EQ(flops, expected);
}

TEST_P(InvariantsOnCorpus, MaximalMatchingsNeverExceedMaximum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index optimum = maximum_matching_size(a);
  Rng rng(7);
  EXPECT_LE(greedy_maximal(a).cardinality(), optimum);
  EXPECT_LE(karp_sipser(a, a.transposed(), rng).cardinality(), optimum);
  EXPECT_LE(dynamic_mindegree(a, a.transposed()).cardinality(), optimum);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, InvariantsOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(RmatScramble, IdScramblingIsABijection) {
  // The Graph500-style scrambler must not merge vertex ids, or the generator
  // would silently shrink the graph.
  Rng rng(3);
  RmatParams params = RmatParams::er(10);
  params.edge_factor = 2.0;
  const CooMatrix m = rmat(params, rng);
  // Indirect check: generate twice with/without scrambling; nnz after dedup
  // must agree except for collisions inherent to the generator itself.
  Rng rng2(3);
  RmatParams raw = params;
  raw.scramble_ids = false;
  const CooMatrix m2 = rmat(raw, rng2);
  EXPECT_EQ(m.nnz(), m2.nnz());
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds() * 1e3 * 0.5);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace mcm
