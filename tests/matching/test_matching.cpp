#include "matching/matching.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Matching, EmptyMatchingIsConsistent) {
  const Matching m(4, 5);
  EXPECT_EQ(m.n_rows(), 4);
  EXPECT_EQ(m.n_cols(), 5);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_TRUE(m.consistent());
  EXPECT_EQ(unmatched_cols(m), 5);
  EXPECT_EQ(unmatched_rows(m), 4);
}

TEST(Matching, MatchRecordsBothSides) {
  Matching m(3, 3);
  m.match(1, 2);
  EXPECT_EQ(m.mate_r[1], 2);
  EXPECT_EQ(m.mate_c[2], 1);
  EXPECT_EQ(m.cardinality(), 1);
  EXPECT_TRUE(m.consistent());
  EXPECT_EQ(unmatched_cols(m), 2);
  EXPECT_EQ(unmatched_rows(m), 2);
}

TEST(Matching, InconsistentWhenOneSided) {
  Matching m(2, 2);
  m.mate_r[0] = 1;  // mate_c[1] left unset
  EXPECT_FALSE(m.consistent());
}

TEST(Matching, InconsistentWhenCrossed) {
  Matching m(2, 2);
  m.mate_r[0] = 0;
  m.mate_c[0] = 1;
  EXPECT_FALSE(m.consistent());
}

TEST(Matching, InconsistentWhenOutOfRange) {
  Matching m(2, 2);
  m.mate_r[0] = 5;
  EXPECT_FALSE(m.consistent());
  Matching m2(2, 2);
  m2.mate_c[1] = -3;  // any negative other than kNull handled as bogus row
  m2.mate_c[1] = 7;
  EXPECT_FALSE(m2.consistent());
}

TEST(Matching, EqualityComparesMates) {
  Matching a(2, 2), b(2, 2);
  EXPECT_EQ(a, b);
  a.match(0, 1);
  EXPECT_NE(a, b);
  b.match(0, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mcm
