#include "matching/maximal.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

class MaximalOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(MaximalOnCorpus, GreedyIsValidAndMaximal) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = greedy_maximal(a);
  EXPECT_TRUE(verify_maximal(a, m)) << verify_maximal(a, m).reason;
}

TEST_P(MaximalOnCorpus, KarpSipserIsValidAndMaximal) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  Rng rng(11);
  const Matching m = karp_sipser(a, a.transposed(), rng);
  EXPECT_TRUE(verify_maximal(a, m)) << verify_maximal(a, m).reason;
}

TEST_P(MaximalOnCorpus, MindegreeIsValidAndMaximal) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = dynamic_mindegree(a, a.transposed());
  EXPECT_TRUE(verify_maximal(a, m)) << verify_maximal(a, m).reason;
}

TEST_P(MaximalOnCorpus, AllAchieveHalfApproximation) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index optimum = maximum_matching_size(a);
  Rng rng(13);
  const Index greedy = greedy_maximal(a).cardinality();
  const Index ks = karp_sipser(a, a.transposed(), rng).cardinality();
  const Index mind = dynamic_mindegree(a, a.transposed()).cardinality();
  // Any maximal matching is at least half of the optimum.
  EXPECT_GE(2 * greedy, optimum);
  EXPECT_GE(2 * ks, optimum);
  EXPECT_GE(2 * mind, optimum);
  EXPECT_LE(greedy, optimum);
  EXPECT_LE(ks, optimum);
  EXPECT_LE(mind, optimum);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MaximalOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(KarpSipser, OptimalOnPaths) {
  // A path graph is a forest: degree-1 processing alone finds an MCM.
  CooMatrix path(4, 4);
  path.add_edge(0, 0);
  path.add_edge(1, 0);
  path.add_edge(1, 1);
  path.add_edge(2, 1);
  path.add_edge(2, 2);
  path.add_edge(3, 2);
  path.add_edge(3, 3);
  const CscMatrix a = CscMatrix::from_coo(path);
  Rng rng(1);
  EXPECT_EQ(karp_sipser(a, a.transposed(), rng).cardinality(),
            maximum_matching_size(a));
}

TEST(KarpSipser, OptimalOnRandomForests) {
  // Random bipartite forests: attach each new column to one random earlier
  // row, plus pendant rows. KS must be exactly optimal.
  Rng gen(77);
  for (int trial = 0; trial < 5; ++trial) {
    CooMatrix forest(40, 40);
    for (Index j = 0; j < 40; ++j) {
      forest.add_edge(static_cast<Index>(gen.next_below(40)), j);
    }
    forest.sort_dedup();
    const CscMatrix a = CscMatrix::from_coo(forest);
    // Forest check is implicit: with one edge per column the graph has no
    // cycle through columns of degree >= 2 in this construction only if
    // acyclic; regardless, KS >= greedy always, and on most such instances
    // KS hits the optimum. Assert validity plus the >= greedy dominance.
    Rng rng(trial);
    const Index ks = karp_sipser(a, a.transposed(), rng).cardinality();
    const Index optimum = maximum_matching_size(a);
    EXPECT_EQ(ks, optimum) << "trial " << trial;
  }
}

TEST(DynamicMindegree, MatchesIsolatedPairsFirst) {
  // Column 0 has degree 1 -> must be matched to its only row despite column
  // 1 competing for the same row with higher degree.
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(0, 1);
  coo.add_edge(1, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const Matching m = dynamic_mindegree(a, a.transposed());
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_EQ(m.mate_c[0], 0);
  EXPECT_EQ(m.mate_c[1], 1);
}

TEST(Maximal, TransposeMismatchThrows) {
  CooMatrix coo(3, 2);
  coo.add_edge(0, 0);
  const CscMatrix a = CscMatrix::from_coo(coo);
  Rng rng(1);
  EXPECT_THROW(karp_sipser(a, a, rng), std::invalid_argument);
  EXPECT_THROW(dynamic_mindegree(a, a), std::invalid_argument);
}

TEST(Greedy, PicksFirstUnmatchedNeighbor) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 0);
  coo.add_edge(0, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const Matching m = greedy_maximal(a);
  EXPECT_EQ(m.mate_c[0], 0);  // column 0 takes row 0 (first in order)
  EXPECT_EQ(m.mate_c[1], kNull);  // column 1's only neighbor is taken
}

}  // namespace
}  // namespace mcm
