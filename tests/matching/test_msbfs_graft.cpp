#include "matching/msbfs_graft.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matching/msbfs_seq.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

class GraftOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(GraftOnCorpus, ColdStartIsCertifiedMaximum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  const Matching m =
      msbfs_graft_maximum(a, at, Matching(a.n_rows(), a.n_cols()));
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
}

TEST_P(GraftOnCorpus, WarmStartFromEveryInitializer) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  const Index optimum = maximum_matching_size(a);
  Rng rng(3);
  for (Matching init : {greedy_maximal(a), karp_sipser(a, at, rng),
                        dynamic_mindegree(a, at)}) {
    const Matching m = msbfs_graft_maximum(a, at, std::move(init));
    EXPECT_EQ(m.cardinality(), optimum);
    EXPECT_TRUE(verify_valid(a, m));
  }
}

TEST_P(GraftOnCorpus, StatsAreConsistent) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  GraftStats stats;
  const Matching m =
      msbfs_graft_maximum(a, at, Matching(a.n_rows(), a.n_cols()), &stats);
  EXPECT_EQ(stats.augmentations, m.cardinality());
  EXPECT_GE(stats.freed_rows, stats.grafted_rows);
  if (m.cardinality() > 0) {
    EXPECT_GE(stats.phases, 1);
  }
  // Every BFS/graft scan is an edge touch; bounded by phases * edges.
  EXPECT_LE(stats.traversed_edges,
            static_cast<std::uint64_t>(stats.phases + 1)
                * 2 * static_cast<std::uint64_t>(a.nnz()));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GraftOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

class GraftMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(GraftMedium, OptimalOnMediumInstances) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  const Matching init = dynamic_mindegree(a, at);
  const Matching m = msbfs_graft_maximum(a, at, init);
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
}

TEST_P(GraftMedium, TraversalsStayNearPlainMsBfs) {
  // The rebuild-vs-graft switch bounds the overhead: even on cold starts,
  // where nearly every tree augments and grafting would be wasteful, total
  // traversals stay within a couple of full edge sweeps of plain MS-BFS.
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  MsBfsStats plain_stats;
  (void)msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()), {}, &plain_stats);
  GraftStats graft_stats;
  (void)msbfs_graft_maximum(a, at, Matching(a.n_rows(), a.n_cols()),
                            &graft_stats);
  EXPECT_LE(graft_stats.traversed_edges,
            plain_stats.spmv_flops + 3 * static_cast<std::uint64_t>(a.nnz()));
}

INSTANTIATE_TEST_SUITE_P(
    Medium, GraftMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(Graft, MismatchedArgumentsThrow) {
  CooMatrix coo(3, 2);
  coo.add_edge(0, 0);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const CscMatrix at = a.transposed();
  EXPECT_THROW((void)msbfs_graft_maximum(a, a, Matching(3, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)msbfs_graft_maximum(a, at, Matching(2, 2)),
               std::invalid_argument);
}

TEST(Graft, AlreadyMaximumMakesNoChanges) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  Matching perfect(2, 2);
  perfect.match(0, 0);
  perfect.match(1, 1);
  GraftStats stats;
  const Matching m =
      msbfs_graft_maximum(a, a.transposed(), perfect, &stats);
  EXPECT_EQ(m, perfect);
  EXPECT_EQ(stats.phases, 0);
}

TEST(Graft, GraftingActuallyHappensOnAdversarialChain) {
  // Long alternating chain plus a pendant: forces several phases in which
  // trees die and their vertices must be re-attached to surviving trees.
  const Index n = 200;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add_edge(i, i);
  for (Index i = 0; i + 1 < n; ++i) coo.add_edge(i, i + 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  // Adversarial warm start leaving two far-apart unmatched columns.
  Matching init(n, n);
  for (Index i = 2; i + 1 < n; ++i) init.match(i, i + 1);
  GraftStats stats;
  const Matching m = msbfs_graft_maximum(a, a.transposed(), init, &stats);
  EXPECT_EQ(m.cardinality(), n);
  EXPECT_TRUE(verify_maximum(a, m));
}

TEST(Graft, BeatsPlainRebuildOnWarmStartWithFewDeathsPerPhase) {
  // Warm start on a long chain: each phase augments one of the two
  // surviving trees, so almost the whole forest stays alive — the grafting
  // sweet spot. Plain MS-BFS rebuilds the massive forest each phase.
  const Index n = 3000;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add_edge(i, i);
  for (Index i = 0; i + 1 < n; ++i) coo.add_edge(i, i + 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  const CscMatrix at = a.transposed();
  Matching init(n, n);
  for (Index i = 4; i + 1 < n; ++i) init.match(i, i + 1);  // leaves c0..c4 area free
  MsBfsStats plain_stats;
  const Matching plain = msbfs_maximum(a, init, {}, &plain_stats);
  GraftStats graft_stats;
  const Matching graft = msbfs_graft_maximum(a, at, init, &graft_stats);
  EXPECT_EQ(plain.cardinality(), graft.cardinality());
  if (plain_stats.phases > 3) {
    EXPECT_LT(graft_stats.traversed_edges, plain_stats.spmv_flops);
  }
}

}  // namespace
}  // namespace mcm
