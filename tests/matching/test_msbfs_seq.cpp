#include "matching/msbfs_seq.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

class MsBfsOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(MsBfsOnCorpus, ColdStartIsCertifiedMaximum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()));
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
}

TEST_P(MsBfsOnCorpus, WarmStartFromEveryInitializer) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const CscMatrix at = a.transposed();
  const Index optimum = maximum_matching_size(a);
  Rng rng(3);
  for (Matching init : {greedy_maximal(a), karp_sipser(a, at, rng),
                        dynamic_mindegree(a, at)}) {
    const Matching m = msbfs_maximum(a, std::move(init));
    EXPECT_EQ(m.cardinality(), optimum);
    EXPECT_TRUE(verify_valid(a, m));
  }
}

TEST_P(MsBfsOnCorpus, AllSemiringsReachOptimum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Index optimum = maximum_matching_size(a);
  for (const SemiringKind kind :
       {SemiringKind::MinParent, SemiringKind::MaxParent,
        SemiringKind::RandParent, SemiringKind::RandRoot}) {
    MsBfsOptions options;
    options.semiring = kind;
    options.seed = 99;
    const Matching m =
        msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()), options);
    EXPECT_EQ(m.cardinality(), optimum)
        << "semiring " << static_cast<int>(kind);
    EXPECT_TRUE(verify_valid(a, m));
  }
}

TEST_P(MsBfsOnCorpus, PruningDoesNotChangeCardinality) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  MsBfsOptions with_prune;
  with_prune.enable_prune = true;
  MsBfsOptions without_prune;
  without_prune.enable_prune = false;
  const Matching m1 =
      msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()), with_prune);
  const Matching m2 =
      msbfs_maximum(a, Matching(a.n_rows(), a.n_cols()), without_prune);
  EXPECT_EQ(m1.cardinality(), m2.cardinality());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MsBfsOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

class MsBfsMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(MsBfsMedium, OptimalWithDefaultPipeline) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching init = dynamic_mindegree(a, a.transposed());
  MsBfsStats stats;
  const Matching m = msbfs_maximum(a, init, {}, &stats);
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_GE(stats.iterations, stats.phases);
  EXPECT_EQ(stats.augmentations, m.cardinality() - init.cardinality());
}

INSTANTIATE_TEST_SUITE_P(
    Medium, MsBfsMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(MsBfs, StatsCountPhasesAndFlops) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 0);
  coo.add_edge(0, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  MsBfsStats stats;
  const Matching m = msbfs_maximum(a, Matching(2, 2), {}, &stats);
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_GE(stats.phases, 1);
  EXPECT_GT(stats.spmv_flops, 0u);
  EXPECT_EQ(stats.augmentations, 2);
}

TEST(MsBfs, EmptyGraphTerminatesImmediately) {
  const CscMatrix a = CscMatrix::from_coo(CooMatrix(4, 4));
  MsBfsStats stats;
  const Matching m = msbfs_maximum(a, Matching(4, 4), {}, &stats);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_EQ(stats.phases, 0);
}

TEST(MsBfs, AlreadyMaximumInputMakesNoChange) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  Matching perfect(2, 2);
  perfect.match(0, 0);
  perfect.match(1, 1);
  MsBfsStats stats;
  const Matching m = msbfs_maximum(a, perfect, {}, &stats);
  EXPECT_EQ(m, perfect);
  EXPECT_EQ(stats.augmentations, 0);
}

TEST(MsBfs, MismatchedInitialThrows) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  EXPECT_THROW(msbfs_maximum(CscMatrix::from_coo(coo), Matching(1, 1)),
               std::invalid_argument);
}

TEST(AugmentPaths, FlipsASinglePath) {
  // Path: c0 (root, unmatched) - r0 - c1 - r1 (endpoint). Initially (r0, c1)
  // matched; after augmenting, (r0, c0) and (r1, c1) are matched.
  Matching m(2, 2);
  m.match(0, 1);
  std::vector<Index> path_c{1, kNull};  // wait: indexed by root column
  // root is column 0; endpoint row is 1.
  path_c = {1, kNull};
  std::vector<Index> pi_r{0, 1};  // r0 discovered by c0, r1 by c1
  const Index augmented = augment_paths(path_c, pi_r, m);
  EXPECT_EQ(augmented, 1);
  EXPECT_EQ(m.mate_r[0], 0);
  EXPECT_EQ(m.mate_r[1], 1);
  EXPECT_TRUE(m.consistent());
}

TEST(AugmentPaths, LengthOnePath) {
  Matching m(1, 1);
  const std::vector<Index> path_c{0};
  const std::vector<Index> pi_r{0};
  Index longest = 0;
  EXPECT_EQ(augment_paths(path_c, pi_r, m, &longest), 1);
  EXPECT_EQ(m.mate_r[0], 0);
  EXPECT_EQ(longest, 1);
}

TEST(AugmentPaths, BrokenParentChainThrows) {
  Matching m(1, 1);
  const std::vector<Index> path_c{0};
  const std::vector<Index> pi_r{kNull};
  EXPECT_THROW(augment_paths(path_c, pi_r, m), std::logic_error);
}

}  // namespace
}  // namespace mcm
