/// Executable walkthrough of the paper's **Figure 1**: the decomposition of
/// one MS-BFS iteration into the seven matrix-algebraic steps, traced on a
/// Fig. 2-style bipartite instance with every intermediate vector pinned.
/// Read top to bottom, this file doubles as the library's tutorial for the
/// paper's formulation.
///
/// Instance (rows r0..r4, columns c0..c4; matrix entry (i,j) = edge):
///
///     r0 - c0
///     r1 - c0, c1
///     r2 - c1, c4
///     r3 - c2
///     r4 - c3, c4
///
/// Initial matching (as in Fig. 2's setup): (r1,c1), (r4,c3) are matched,
/// so the unmatched columns are c0, c2, c4 — the initial frontier.

#include <gtest/gtest.h>

#include "algebra/primitives.hpp"
#include "algebra/semiring.hpp"
#include "algebra/spmv.hpp"
#include "matching/matching.hpp"
#include "matching/msbfs_seq.hpp"
#include "matching/verify.hpp"
#include "matrix/csc.hpp"

namespace mcm {
namespace {

CscMatrix figure2_matrix() {
  CooMatrix m(5, 5);
  m.add_edge(0, 0);
  m.add_edge(1, 0);
  m.add_edge(1, 1);
  m.add_edge(2, 1);
  m.add_edge(2, 4);
  m.add_edge(3, 2);
  m.add_edge(4, 3);
  m.add_edge(4, 4);
  return CscMatrix::from_coo(m);
}

Matching figure2_initial_matching() {
  Matching m(5, 5);
  m.match(1, 1);
  m.match(4, 3);
  return m;
}

TEST(PaperFigure1, OneIterationStepByStep) {
  const CscMatrix a = figure2_matrix();
  const Matching m = figure2_initial_matching();

  // Dense bookkeeping vectors of Algorithm 2: parents of visited rows and
  // augmenting-path endpoints, all initially "missing" (-1).
  std::vector<Index> pi_r(5, kNull);
  std::vector<Index> path_c(5, kNull);

  // Initial column frontier: unmatched columns c0, c2, c4 with
  // parent = root = self, exactly Fig. 1's first row.
  SpVec<Vertex> f_c(5);
  for (Index j = 0; j < 5; ++j) {
    if (m.mate_c[static_cast<std::size_t>(j)] == kNull) {
      f_c.push_back(j, Vertex(j, j));
    }
  }
  ASSERT_EQ(ind(f_c), (std::vector<Index>{0, 2, 4}));

  // --- Step 1: neighborhood exploration by SpMV over (select2nd, minParent).
  // c0 reaches r0, r1; c2 reaches r3; c4 reaches r2, r4. No row is contested
  // here, so minParent does not have to break ties.
  SpVec<Vertex> f_r = spmv(a, f_c, Select2ndMinParent{});
  ASSERT_EQ(f_r.nnz(), 5);
  EXPECT_EQ(f_r.value_at(0), Vertex(0, 0));  // r0 <- c0's tree
  EXPECT_EQ(f_r.value_at(1), Vertex(0, 0));  // r1 <- c0's tree
  EXPECT_EQ(f_r.value_at(2), Vertex(4, 4));  // r2 <- c4's tree
  EXPECT_EQ(f_r.value_at(3), Vertex(2, 2));  // r3 <- c2's tree
  EXPECT_EQ(f_r.value_at(4), Vertex(4, 4));  // r4 <- c4's tree

  // --- Step 2: keep unvisited rows (all are, in the first iteration).
  f_r = select(f_r, pi_r, [](Index p) { return p == kNull; });
  EXPECT_EQ(f_r.nnz(), 5);

  // --- Step 3: record parents of the newly visited rows.
  set_dense(pi_r, f_r, [](const Vertex& v) { return v.parent; });
  EXPECT_EQ(pi_r, (std::vector<Index>{0, 0, 4, 2, 4}));

  // --- Step 4: split unmatched rows (augmenting-path endpoints!) from
  // matched ones. r0, r2, r3 are unmatched; r1, r4 are matched.
  SpVec<Vertex> uf_r =
      select(f_r, m.mate_r, [](Index mate) { return mate == kNull; });
  f_r = select(f_r, m.mate_r, [](Index mate) { return mate != kNull; });
  EXPECT_EQ(ind(uf_r), (std::vector<Index>{0, 2, 3}));
  EXPECT_EQ(ind(f_r), (std::vector<Index>{1, 4}));

  // --- Step 5: store one endpoint per tree, keyed by root (INVERT with
  // keep-first). Trees c0, c4, c2 each found one endpoint.
  SpVec<Index> t_c = invert<Index>(
      uf_r, 5, [](Index, const Vertex& v) { return v.root; },
      [](Index i, const Vertex&) { return i; });
  set_dense(path_c, t_c, [](Index endpoint) { return endpoint; });
  EXPECT_EQ(path_c, (std::vector<Index>{0, kNull, 3, kNull, 2}));

  // --- Step 6: prune rows whose trees just found a path. Every tree did,
  // so the matched continuation rows r1 (tree c0) and r4 (tree c4) drop out
  // and the phase's BFS is already over.
  std::vector<Index> roots;
  for (Index k = 0; k < uf_r.nnz(); ++k) roots.push_back(uf_r.value_at(k).root);
  f_r = prune(f_r, roots, [](const Vertex& v) { return v.root; });
  EXPECT_TRUE(f_r.empty());

  // --- Step 7: next frontier from the mates of the surviving rows — empty
  // here, ending the phase.
  set_sparse(f_r, m.mate_r, [](Vertex& v, Index mate) { v.parent = mate; });
  const SpVec<Vertex> next = invert<Vertex>(
      f_r, 5, [](Index, const Vertex& v) { return v.parent; },
      [](Index, const Vertex& v) { return Vertex(v.parent, v.root); });
  EXPECT_TRUE(next.empty());

  // --- Algorithm 3: augment along the three vertex-disjoint paths
  // (all have length one: root column - endpoint row).
  Matching augmented = m;
  EXPECT_EQ(augment_paths(path_c, pi_r, augmented), 3);
  EXPECT_EQ(augmented.cardinality(), 5);
  EXPECT_EQ(augmented.mate_c[0], 0);
  EXPECT_EQ(augmented.mate_c[2], 3);
  EXPECT_EQ(augmented.mate_c[4], 2);
  // The pre-existing matches are untouched (paths were vertex-disjoint).
  EXPECT_EQ(augmented.mate_c[1], 1);
  EXPECT_EQ(augmented.mate_c[3], 4);
  EXPECT_TRUE(verify_maximum(figure2_matrix(), augmented));
}

TEST(PaperFigure1, FullAlgorithmAgreesWithTheWalkthrough) {
  // Running Algorithm 2 end to end on the same instance must produce the
  // same perfect matching the manual walkthrough derived.
  const CscMatrix a = figure2_matrix();
  const Matching result = msbfs_maximum(a, figure2_initial_matching());
  EXPECT_EQ(result.cardinality(), 5);
  EXPECT_TRUE(verify_maximum(a, result));
}

}  // namespace
}  // namespace mcm
