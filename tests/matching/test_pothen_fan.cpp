#include "matching/pothen_fan.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

class PothenFanOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(PothenFanOnCorpus, MatchesHopcroftKarpCardinality) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = pothen_fan(a);
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
}

TEST_P(PothenFanOnCorpus, WarmStartPreservesOptimality) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = pothen_fan(a, greedy_maximal(a));
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_TRUE(verify_valid(a, m));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PothenFanOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

class PothenFanMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(PothenFanMedium, OptimalOnMediumInstances) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  EXPECT_EQ(pothen_fan(a).cardinality(), maximum_matching_size(a));
}

INSTANTIATE_TEST_SUITE_P(
    Medium, PothenFanMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(PothenFan, MismatchedInitialThrows) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  EXPECT_THROW(pothen_fan(CscMatrix::from_coo(coo), Matching(9, 9)),
               std::invalid_argument);
}

TEST(PothenFan, LookaheadFindsDirectEndpoints) {
  // Column adjacent to one matched and one unmatched row: lookahead must
  // grab the unmatched row without descending.
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(0, 1);
  coo.add_edge(1, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_EQ(pothen_fan(a).cardinality(), 2);
}

}  // namespace
}  // namespace mcm
