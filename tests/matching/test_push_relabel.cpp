#include "matching/push_relabel.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"
#include "matching/verify.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::medium_corpus;
using testing::small_corpus;

class PushRelabelOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(PushRelabelOnCorpus, ColdStartIsCertifiedMaximum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m =
      push_relabel_maximum(a, a.transposed(), Matching(a.n_rows(), a.n_cols()));
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_TRUE(r) << r.reason;
}

TEST_P(PushRelabelOnCorpus, WarmStartReachesOptimum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = push_relabel_maximum(a, a.transposed(), greedy_maximal(a));
  EXPECT_EQ(m.cardinality(), maximum_matching_size(a));
  EXPECT_TRUE(verify_valid(a, m));
}

TEST_P(PushRelabelOnCorpus, StatsAreConsistent) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  PushRelabelStats stats;
  const Matching m =
      push_relabel_maximum(a, a.transposed(), Matching(a.n_rows(), a.n_cols()), &stats);
  // Every matched edge required at least one push; steals add more.
  EXPECT_GE(stats.pushes, static_cast<std::uint64_t>(m.cardinality()));
  // A non-isolated column is only abandoned after label raises drove it (or
  // its neighbors' mates) to the bound.
  if (stats.discarded > 0) {
    EXPECT_GT(stats.relabels, 0u);
  }
  // Deficiency = discarded + isolated columns.
  Index isolated = 0;
  for (Index j = 0; j < a.n_cols(); ++j) {
    if (a.col_degree(j) == 0) ++isolated;
  }
  EXPECT_EQ(a.n_cols() - m.cardinality(), stats.discarded + isolated);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PushRelabelOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

class PushRelabelMedium : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(PushRelabelMedium, OptimalOnMediumInstances) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  EXPECT_EQ(push_relabel_maximum(a, a.transposed(), Matching(a.n_rows(), a.n_cols()))
                .cardinality(),
            maximum_matching_size(a));
}

INSTANTIATE_TEST_SUITE_P(
    Medium, PushRelabelMedium, ::testing::ValuesIn(medium_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(PushRelabel, StealsWhenNeeded) {
  // c0-{r0}, c1-{r0, r1}: greedy order would match c1-r0 first; push-relabel
  // must steal r0 back for c0.
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(0, 1);
  coo.add_edge(1, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  PushRelabelStats stats;
  const Matching m = push_relabel_maximum(a, a.transposed(), Matching(2, 2), &stats);
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_EQ(m.mate_c[0], 0);
  EXPECT_EQ(m.mate_c[1], 1);
}

TEST(PushRelabel, DiscardsUnmatchableColumns) {
  // 3 columns share 1 row: 2 columns must be discarded, not spun forever.
  CooMatrix coo(1, 3);
  for (Index j = 0; j < 3; ++j) coo.add_edge(0, j);
  const CscMatrix a = CscMatrix::from_coo(coo);
  PushRelabelStats stats;
  const Matching m = push_relabel_maximum(a, a.transposed(), Matching(1, 3), &stats);
  EXPECT_EQ(m.cardinality(), 1);
  EXPECT_EQ(stats.discarded, 2);
}

TEST(PushRelabel, MismatchedArgumentsThrow) {
  CooMatrix coo(3, 2);
  coo.add_edge(0, 0);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_THROW((void)push_relabel_maximum(a, a.transposed(), Matching(3, 3)),
               std::invalid_argument);
  EXPECT_THROW((void)push_relabel_maximum(a, a, Matching(3, 2)),
               std::invalid_argument);
}

TEST(PushRelabel, EmptyGraph) {
  const CscMatrix a = CscMatrix::from_coo(CooMatrix(4, 4));
  EXPECT_EQ(push_relabel_maximum(a, a.transposed(), Matching(4, 4)).cardinality(), 0);
}

}  // namespace
}  // namespace mcm
