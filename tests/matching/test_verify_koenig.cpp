#include "matching/koenig.hpp"
#include "matching/verify.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/maximal.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

CooMatrix two_by_two() {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 0);
  coo.add_edge(1, 0);
  coo.add_edge(0, 1);
  return coo;
}

TEST(VerifyValid, AcceptsEmptyMatching) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  EXPECT_TRUE(verify_valid(a, Matching(2, 2)));
}

TEST(VerifyValid, RejectsWrongDimensions) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  EXPECT_FALSE(verify_valid(a, Matching(3, 2)));
}

TEST(VerifyValid, RejectsNonEdgeMatch) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  Matching m(2, 2);
  m.match(1, 1);  // (1,1) is not an edge
  const VerifyResult r = verify_valid(a, m);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("not an edge"), std::string::npos);
}

TEST(VerifyValid, RejectsInconsistentMates) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  Matching m(2, 2);
  m.mate_r[0] = 0;  // one-sided
  EXPECT_FALSE(verify_valid(a, m));
}

TEST(VerifyMaximal, RejectsNonMaximal) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  const VerifyResult r = verify_maximal(a, Matching(2, 2));
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("unmatched"), std::string::npos);
}

TEST(VerifyMaximal, AcceptsMaximal) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  Matching m(2, 2);
  m.match(0, 0);  // rows {1} and cols {1} remain but (1,1) is no edge
  EXPECT_TRUE(verify_maximal(a, m));
}

TEST(VerifyMaximum, RejectsMaximalButNotMaximum) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  Matching m(2, 2);
  m.match(0, 0);  // maximal, but optimum is 2 via augmenting path
  const VerifyResult r = verify_maximum(a, m);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("not maximum"), std::string::npos);
}

TEST(VerifyMaximum, AcceptsTrueMaximum) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  Matching m(2, 2);
  m.match(1, 0);
  m.match(0, 1);
  EXPECT_TRUE(verify_maximum(a, m));
}

class KoenigOnCorpus : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(KoenigOnCorpus, CoverFromMaximumMatchingIsMinimum) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching m = hopcroft_karp(a);
  const VertexCover cover = koenig_cover(a, m);
  EXPECT_TRUE(cover_is_valid(a, cover));
  EXPECT_EQ(cover.size(), m.cardinality());  // König's theorem
}

TEST_P(KoenigOnCorpus, CoverFromMaximalMatchingIsLargerUnlessOptimal) {
  const CscMatrix a = CscMatrix::from_coo(GetParam().coo);
  const Matching maximal = greedy_maximal(a);
  const Index optimum = maximum_matching_size(a);
  const VertexCover cover = koenig_cover(a, maximal);
  // The construction always covers; size exceeds |M| exactly when an
  // augmenting path exists.
  EXPECT_TRUE(cover_is_valid(a, cover));
  if (maximal.cardinality() == optimum) {
    EXPECT_EQ(cover.size(), maximal.cardinality());
  } else {
    EXPECT_GT(cover.size(), maximal.cardinality());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, KoenigOnCorpus, ::testing::ValuesIn(small_corpus()),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

TEST(Koenig, EmptyGraphEmptyCover) {
  const CscMatrix a = CscMatrix::from_coo(CooMatrix(3, 3));
  const VertexCover cover = koenig_cover(a, Matching(3, 3));
  EXPECT_EQ(cover.size(), 0);
  EXPECT_TRUE(cover_is_valid(a, cover));
}

TEST(CoverIsValid, DetectsUncoveredEdge) {
  const CscMatrix a = CscMatrix::from_coo(two_by_two());
  VertexCover empty_cover;
  EXPECT_FALSE(cover_is_valid(a, empty_cover));
  VertexCover row_zero;
  row_zero.rows = {0};
  EXPECT_FALSE(cover_is_valid(a, row_zero));  // edge (1,0) uncovered
  VertexCover good;
  good.rows = {0};
  good.cols = {0};
  EXPECT_TRUE(cover_is_valid(a, good));
}

}  // namespace
}  // namespace mcm
