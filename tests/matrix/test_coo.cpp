#include "matrix/coo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcm {
namespace {

TEST(Coo, EmptyMatrix) {
  CooMatrix m(3, 4);
  EXPECT_EQ(m.n_rows, 3);
  EXPECT_EQ(m.n_cols, 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_NO_THROW(m.validate());
}

TEST(Coo, AddEdgeAndValidate) {
  CooMatrix m(2, 2);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_NO_THROW(m.validate());
}

TEST(Coo, ValidateCatchesRowOutOfRange) {
  CooMatrix m(2, 2);
  m.add_edge(2, 0);
  EXPECT_THROW(m.validate(), std::out_of_range);
}

TEST(Coo, ValidateCatchesColOutOfRange) {
  CooMatrix m(2, 2);
  m.add_edge(0, -1);
  EXPECT_THROW(m.validate(), std::out_of_range);
}

TEST(Coo, SortDedupRemovesDuplicates) {
  CooMatrix m(3, 3);
  m.add_edge(1, 2);
  m.add_edge(0, 0);
  m.add_edge(1, 2);
  m.add_edge(1, 2);
  EXPECT_EQ(m.sort_dedup(), 2);
  EXPECT_EQ(m.nnz(), 2);
  // Column-major order after sorting.
  EXPECT_EQ(m.cols[0], 0);
  EXPECT_EQ(m.cols[1], 2);
}

TEST(Coo, SortDedupOrdersColumnMajor) {
  CooMatrix m(3, 3);
  m.add_edge(2, 1);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  m.sort_dedup();
  EXPECT_EQ(m.cols[0], 0);
  EXPECT_EQ(m.rows[1], 0);
  EXPECT_EQ(m.rows[2], 2);
}

TEST(Coo, TransposeSwapsDimensionsAndEntries) {
  CooMatrix m(2, 3);
  m.add_edge(1, 2);
  const CooMatrix t = m.transposed();
  EXPECT_EQ(t.n_rows, 3);
  EXPECT_EQ(t.n_cols, 2);
  ASSERT_EQ(t.nnz(), 1);
  EXPECT_EQ(t.rows[0], 2);
  EXPECT_EQ(t.cols[0], 1);
}

TEST(Coo, DoubleTransposeIsIdentity) {
  CooMatrix m(4, 5);
  m.add_edge(0, 4);
  m.add_edge(3, 1);
  CooMatrix tt = m.transposed().transposed();
  m.sort_dedup();
  tt.sort_dedup();
  EXPECT_EQ(tt.rows, m.rows);
  EXPECT_EQ(tt.cols, m.cols);
}

}  // namespace
}  // namespace mcm
