#include "matrix/csc.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

CooMatrix sample() {
  // The paper's Fig. 2 bipartite graph shape: 5 rows x 5 cols.
  CooMatrix m(5, 5);
  m.add_edge(0, 0);
  m.add_edge(1, 0);
  m.add_edge(1, 1);
  m.add_edge(2, 1);
  m.add_edge(2, 2);
  m.add_edge(3, 3);
  m.add_edge(4, 3);
  m.add_edge(4, 4);
  return m;
}

TEST(Csc, BuildFromCoo) {
  const CscMatrix a = CscMatrix::from_coo(sample());
  EXPECT_EQ(a.n_rows(), 5);
  EXPECT_EQ(a.n_cols(), 5);
  EXPECT_EQ(a.nnz(), 8);
  EXPECT_EQ(a.col_degree(0), 2);
  EXPECT_EQ(a.col_degree(4), 1);
}

TEST(Csc, RowsSortedWithinColumns) {
  CooMatrix coo(4, 2);
  coo.add_edge(3, 0);
  coo.add_edge(0, 0);
  coo.add_edge(2, 0);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_EQ(a.row_at(a.col_begin(0)), 0);
  EXPECT_EQ(a.row_at(a.col_begin(0) + 1), 2);
  EXPECT_EQ(a.row_at(a.col_begin(0) + 2), 3);
}

TEST(Csc, DuplicatesCollapsed) {
  CooMatrix coo(2, 2);
  coo.add_edge(0, 1);
  coo.add_edge(0, 1);
  coo.add_edge(0, 1);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 1);
}

TEST(Csc, HasEntry) {
  const CscMatrix a = CscMatrix::from_coo(sample());
  EXPECT_TRUE(a.has_entry(0, 0));
  EXPECT_TRUE(a.has_entry(4, 4));
  EXPECT_FALSE(a.has_entry(0, 4));
  EXPECT_FALSE(a.has_entry(-1, 0));
  EXPECT_FALSE(a.has_entry(0, 5));
}

TEST(Csc, TransposeFlipsEntries) {
  const CscMatrix a = CscMatrix::from_coo(sample());
  const CscMatrix t = a.transposed();
  EXPECT_EQ(t.n_rows(), a.n_cols());
  EXPECT_EQ(t.n_cols(), a.n_rows());
  EXPECT_EQ(t.nnz(), a.nnz());
  for (Index j = 0; j < a.n_cols(); ++j) {
    for (Index k = a.col_begin(j); k < a.col_end(j); ++k) {
      EXPECT_TRUE(t.has_entry(j, a.row_at(k)));
    }
  }
}

TEST(Csc, CooRoundTrip) {
  Rng rng(99);
  CooMatrix coo = er_bipartite_m(50, 40, 300, rng);
  const CscMatrix a = CscMatrix::from_coo(coo);
  CooMatrix back = a.to_coo();
  back.sort_dedup();
  coo.sort_dedup();
  EXPECT_EQ(back.rows, coo.rows);
  EXPECT_EQ(back.cols, coo.cols);
}

TEST(Csc, EmptyColumnsHaveZeroDegree) {
  CooMatrix coo(3, 5);
  coo.add_edge(0, 2);
  const CscMatrix a = CscMatrix::from_coo(coo);
  EXPECT_EQ(a.col_degree(0), 0);
  EXPECT_EQ(a.col_degree(2), 1);
  EXPECT_EQ(a.col_degree(4), 0);
}

TEST(Csc, ZeroByZeroMatrix) {
  const CscMatrix a = CscMatrix::from_coo(CooMatrix(0, 0));
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.n_rows(), 0);
}

}  // namespace
}  // namespace mcm
