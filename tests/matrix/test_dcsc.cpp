#include "matrix/dcsc.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "matrix/csc.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

TEST(Dcsc, StoresOnlyNonEmptyColumns) {
  CooMatrix coo(10, 1000000);  // hypersparse: 3 entries, a million columns
  coo.add_edge(0, 5);
  coo.add_edge(3, 5);
  coo.add_edge(7, 999999);
  const DcscMatrix m = DcscMatrix::from_coo(coo);
  EXPECT_EQ(m.nzc(), 2);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.nonempty_col(0), 5);
  EXPECT_EQ(m.nonempty_col(1), 999999);
  // Storage must be O(nnz + nzc), not O(n_cols).
  EXPECT_LT(m.storage_bytes(), 1024u);
}

TEST(Dcsc, FindColAndDegree) {
  CooMatrix coo(4, 8);
  coo.add_edge(0, 2);
  coo.add_edge(1, 2);
  coo.add_edge(3, 6);
  const DcscMatrix m = DcscMatrix::from_coo(coo);
  EXPECT_EQ(m.find_col(2), 0);
  EXPECT_EQ(m.find_col(6), 1);
  EXPECT_EQ(m.find_col(0), kNull);
  EXPECT_EQ(m.find_col(7), kNull);
  EXPECT_EQ(m.col_degree(2), 2);
  EXPECT_EQ(m.col_degree(6), 1);
  EXPECT_EQ(m.col_degree(3), 0);
}

TEST(Dcsc, RowsSortedWithinColumns) {
  CooMatrix coo(5, 3);
  coo.add_edge(4, 1);
  coo.add_edge(0, 1);
  coo.add_edge(2, 1);
  const DcscMatrix m = DcscMatrix::from_coo(coo);
  const Index k = m.find_col(1);
  ASSERT_NE(k, kNull);
  EXPECT_EQ(m.row_at(m.cp_begin(k)), 0);
  EXPECT_EQ(m.row_at(m.cp_begin(k) + 1), 2);
  EXPECT_EQ(m.row_at(m.cp_begin(k) + 2), 4);
}

TEST(Dcsc, DuplicatesCollapsed) {
  CooMatrix coo(2, 2);
  coo.add_edge(1, 1);
  coo.add_edge(1, 1);
  const DcscMatrix m = DcscMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(Dcsc, EmptyMatrix) {
  const DcscMatrix m = DcscMatrix::from_coo(CooMatrix(5, 5));
  EXPECT_EQ(m.nzc(), 0);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.find_col(2), kNull);
}

TEST(Dcsc, AgreesWithCscOnRandomMatrix) {
  Rng rng(123);
  const CooMatrix coo = er_bipartite_m(60, 80, 400, rng);
  const DcscMatrix d = DcscMatrix::from_coo(coo);
  const CscMatrix c = CscMatrix::from_coo(coo);
  EXPECT_EQ(d.nnz(), c.nnz());
  for (Index j = 0; j < 80; ++j) {
    EXPECT_EQ(d.col_degree(j), c.col_degree(j)) << "column " << j;
  }
}

TEST(Dcsc, CooRoundTrip) {
  Rng rng(321);
  CooMatrix coo = er_bipartite_m(30, 500, 100, rng);
  CooMatrix back = DcscMatrix::from_coo(coo).to_coo();
  back.sort_dedup();
  coo.sort_dedup();
  EXPECT_EQ(back.rows, coo.rows);
  EXPECT_EQ(back.cols, coo.cols);
}

}  // namespace
}  // namespace mcm
