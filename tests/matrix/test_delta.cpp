/// Edge-update vocabulary (matrix/delta.hpp): the reference batch apply is
/// the specification every dynamic-path component is tested against, so its
/// own semantics — canonical output order, idempotent no-ops, in-stream
/// dependencies, hard bounds errors — are pinned here, along with the
/// `--updates` text round trip.

#include "matrix/delta.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

namespace mcm {
namespace {

CooMatrix two_by_two() {
  CooMatrix a(2, 2);
  a.add_edge(0, 0);
  a.add_edge(1, 1);
  return a;
}

TEST(ApplyEdgeUpdates, InsertAndDeleteProduceCanonicalOrder) {
  CooMatrix base(3, 3);
  base.add_edge(2, 2);
  base.add_edge(0, 0);
  const CooMatrix out = apply_edge_updates(
      base, {{UpdateKind::Insert, 1, 0}, {UpdateKind::Delete, 2, 2}});
  ASSERT_EQ(out.nnz(), 2);
  // Column-major (col, row) sorted.
  EXPECT_EQ(out.cols, (std::vector<Index>{0, 0}));
  EXPECT_EQ(out.rows, (std::vector<Index>{0, 1}));
}

TEST(ApplyEdgeUpdates, NoOpUpdatesAreSkipped) {
  const CooMatrix base = two_by_two();
  const CooMatrix out = apply_edge_updates(
      base, {{UpdateKind::Insert, 0, 0},    // already present
             {UpdateKind::Delete, 0, 1}});  // absent
  EXPECT_EQ(out.nnz(), base.nnz());
  EXPECT_EQ(out.rows, (std::vector<Index>{0, 1}));
  EXPECT_EQ(out.cols, (std::vector<Index>{0, 1}));
}

TEST(ApplyEdgeUpdates, InStreamDependenciesResolveInOrder) {
  const CooMatrix base = two_by_two();
  // Insert then delete the same edge nets out; delete then reinsert stays.
  const CooMatrix out = apply_edge_updates(
      base, {{UpdateKind::Insert, 0, 1},
             {UpdateKind::Delete, 0, 1},
             {UpdateKind::Delete, 1, 1},
             {UpdateKind::Insert, 1, 1}});
  EXPECT_EQ(out.nnz(), 2);
  EXPECT_EQ(out.rows, (std::vector<Index>{0, 1}));
  EXPECT_EQ(out.cols, (std::vector<Index>{0, 1}));
}

TEST(ApplyEdgeUpdates, OutOfRangeEndpointThrows) {
  const CooMatrix base = two_by_two();
  EXPECT_THROW(apply_edge_updates(base, {{UpdateKind::Insert, 2, 0}}),
               std::out_of_range);
  EXPECT_THROW(apply_edge_updates(base, {{UpdateKind::Delete, 0, 5}}),
               std::out_of_range);
}

TEST(UpdateStream, RoundTripsThroughText) {
  const std::vector<EdgeUpdate> updates{{UpdateKind::Insert, 3, 7},
                                        {UpdateKind::Delete, 0, 2},
                                        {UpdateKind::Insert, 11, 0}};
  std::stringstream buf;
  write_update_stream(buf, updates);
  EXPECT_EQ(read_update_stream(buf), updates);
}

TEST(UpdateStream, SkipsCommentsAndBlankLines) {
  std::istringstream in("% header comment\n\n+ 1 2\n# another\n- 3 4\n");
  const std::vector<EdgeUpdate> updates = read_update_stream(in);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0], (EdgeUpdate{UpdateKind::Insert, 1, 2}));
  EXPECT_EQ(updates[1], (EdgeUpdate{UpdateKind::Delete, 3, 4}));
}

TEST(UpdateStream, MalformedLinesThrowWithLineNumber) {
  for (const char* bad : {"* 1 2\n", "+ 1\n", "+ 1 2 3\n", "+ -1 2\n",
                          "+ a b\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(read_update_stream(in), std::invalid_argument) << bad;
  }
  std::istringstream in("+ 0 0\n- 1\n");
  try {
    (void)read_update_stream(in);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace mcm
