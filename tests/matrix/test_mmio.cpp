#include "matrix/mmio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mcm {
namespace {

CooMatrix parse(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in);
}

TEST(Mmio, ParsesPatternGeneral) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 2\n"
      "1 1\n"
      "3 4\n");
  EXPECT_EQ(m.n_rows, 3);
  EXPECT_EQ(m.n_cols, 4);
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.rows[0], 0);
  EXPECT_EQ(m.cols[1], 3);
}

TEST(Mmio, ParsesRealValuesAndDiscardsThem) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 3.5\n"
      "2 1 -1e-3\n");
  EXPECT_EQ(m.nnz(), 2);
}

TEST(Mmio, SymmetricExpandsBothTriangles) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  // (2,1) mirrors to (1,2); diagonal (3,3) does not duplicate.
  EXPECT_EQ(m.nnz(), 3);
}

TEST(Mmio, SkipsCommentsAndBlankLines) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "\n"
      "2 2 1\n"
      "% another\n"
      "1 1\n");
  EXPECT_EQ(m.nnz(), 1);
}

TEST(Mmio, RejectsMissingBanner) {
  EXPECT_THROW(parse("3 3 0\n"), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n2 2 4\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsComplexField) {
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 0 0\n"),
      std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntries) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 3\n"
                     "1 1\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "3 1\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsMalformedSizeLine) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 two 1\n1 1\n"),
               std::runtime_error);
}

TEST(Mmio, WriteReadRoundTrip) {
  CooMatrix m(4, 6);
  m.add_edge(0, 0);
  m.add_edge(3, 5);
  m.add_edge(1, 2);
  std::ostringstream out;
  write_matrix_market(out, m);
  CooMatrix back = parse(out.str());
  m.sort_dedup();
  back.sort_dedup();
  EXPECT_EQ(back.n_rows, m.n_rows);
  EXPECT_EQ(back.n_cols, m.n_cols);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
}

TEST(Mmio, FileRoundTripOnDisk) {
  CooMatrix m(5, 7);
  m.add_edge(0, 6);
  m.add_edge(4, 0);
  m.add_edge(2, 3);
  const std::string path = ::testing::TempDir() + "/mcm_mmio_roundtrip.mtx";
  write_matrix_market_file(path, m);
  CooMatrix back = read_matrix_market_file(path);
  m.sort_dedup();
  back.sort_dedup();
  EXPECT_EQ(back.n_rows, m.n_rows);
  EXPECT_EQ(back.n_cols, m.n_cols);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  std::remove(path.c_str());
}

TEST(Mmio, WriteToUnwritablePathThrows) {
  CooMatrix m(1, 1);
  EXPECT_THROW(write_matrix_market_file("/nonexistent_dir/x.mtx", m),
               std::runtime_error);
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(Mmio, CaseInsensitiveHeaderKeywords) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix COORDINATE Pattern General\n"
      "1 1 1\n"
      "1 1\n");
  EXPECT_EQ(m.nnz(), 1);
}

}  // namespace
}  // namespace mcm
