#include "matrix/permute.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcm {
namespace {

TEST(Permutation, IdentityMapsToSelf) {
  const Permutation p = Permutation::identity(5);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(p(i), i);
  EXPECT_NO_THROW(p.validate());
}

TEST(Permutation, RandomIsBijection) {
  Rng rng(1);
  const Permutation p = Permutation::random(100, rng);
  EXPECT_NO_THROW(p.validate());
}

TEST(Permutation, InverseComposesToIdentity) {
  Rng rng(2);
  const Permutation p = Permutation::random(50, rng);
  const Permutation inv = p.inverse();
  for (Index i = 0; i < 50; ++i) {
    EXPECT_EQ(inv(p(i)), i);
    EXPECT_EQ(p(inv(i)), i);
  }
}

TEST(Permutation, ValidateRejectsDuplicates) {
  Permutation p;
  p.map = {0, 1, 1};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Permutation, ValidateRejectsOutOfRange) {
  Permutation p;
  p.map = {0, 3};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Permute, MovesEntries) {
  CooMatrix m(2, 2);
  m.add_edge(0, 1);
  Permutation row_perm;
  row_perm.map = {1, 0};
  Permutation col_perm;
  col_perm.map = {1, 0};
  const CooMatrix out = permute(m, row_perm, col_perm);
  ASSERT_EQ(out.nnz(), 1);
  EXPECT_EQ(out.rows[0], 1);
  EXPECT_EQ(out.cols[0], 0);
}

TEST(Permute, SizeMismatchThrows) {
  CooMatrix m(2, 3);
  const Permutation two = Permutation::identity(2);
  EXPECT_THROW(permute(m, two, two), std::invalid_argument);
}

TEST(UnpermuteMates, RoundTripsMatching) {
  // Matching on permuted labels maps back to original labels.
  Rng rng(3);
  const Permutation perm_r = Permutation::random(4, rng);
  const Permutation perm_c = Permutation::random(4, rng);
  // Original matching: row i matched to column i.
  std::vector<Index> mate_new(4, kNull);
  for (Index i = 0; i < 4; ++i) {
    mate_new[static_cast<std::size_t>(perm_r(i))] = perm_c(i);
  }
  const std::vector<Index> mate_old = unpermute_mates(mate_new, perm_r, perm_c);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_EQ(mate_old[static_cast<std::size_t>(i)], i);
  }
}

TEST(UnpermuteMates, PreservesNull) {
  const Permutation id = Permutation::identity(3);
  const std::vector<Index> mate{kNull, 2, kNull};
  EXPECT_EQ(unpermute_mates(mate, id, id), mate);
}

}  // namespace
}  // namespace mcm
