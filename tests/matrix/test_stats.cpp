#include "matrix/stats.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "util/rng.hpp"

namespace mcm {
namespace {

TEST(Stats, CountsBasics) {
  CooMatrix coo(4, 3);
  coo.add_edge(0, 0);
  coo.add_edge(1, 0);
  coo.add_edge(1, 2);
  const GraphStats s = compute_stats(CscMatrix::from_coo(coo));
  EXPECT_EQ(s.n_rows, 4);
  EXPECT_EQ(s.n_cols, 3);
  EXPECT_EQ(s.nnz, 3);
  EXPECT_EQ(s.empty_rows, 2);  // rows 2, 3
  EXPECT_EQ(s.empty_cols, 1);  // column 1
  EXPECT_EQ(s.max_row_degree, 2);
  EXPECT_EQ(s.max_col_degree, 2);
  EXPECT_DOUBLE_EQ(s.avg_col_degree, 1.0);
}

TEST(Stats, UniformDegreesHaveLowSkew) {
  CooMatrix coo(100, 100);
  for (Index i = 0; i < 100; ++i) coo.add_edge(i, i);
  const GraphStats s = compute_stats(CscMatrix::from_coo(coo));
  EXPECT_NEAR(s.col_degree_skew, 0.0, 0.02);
}

TEST(Stats, SkewedGraphHasHigherSkewThanEr) {
  Rng rng1(5), rng2(6);
  const auto er = compute_stats(
      CscMatrix::from_coo(rmat(RmatParams::er(12), rng1)));
  const auto g500 = compute_stats(
      CscMatrix::from_coo(rmat(RmatParams::g500(12), rng2)));
  EXPECT_GT(g500.col_degree_skew, er.col_degree_skew + 0.1);
}

TEST(Stats, ToStringMentionsDimensions) {
  CooMatrix coo(2, 3);
  coo.add_edge(0, 0);
  const std::string text = to_string(compute_stats(CscMatrix::from_coo(coo)));
  EXPECT_NE(text.find("2 x 3"), std::string::npos);
  EXPECT_NE(text.find("nnz=1"), std::string::npos);
}

TEST(Stats, EmptyMatrix) {
  const GraphStats s = compute_stats(CscMatrix::from_coo(CooMatrix(0, 0)));
  EXPECT_EQ(s.nnz, 0);
  EXPECT_DOUBLE_EQ(s.avg_row_degree, 0.0);
}

}  // namespace
}  // namespace mcm
