// Fixture: charge-category-total is scoped to dist/ — core/ drivers
// legitimately charge several categories from one function (the pipeline
// charges SpMV, Augment and Prune in turn), so this file must stay clean.

#include "gridsim/context.hpp"

namespace mcm {

void fixture_driver_charges(SimContext& ctx, std::uint64_t n) {
  ctx.charge_elem_ops(Cost::SpMV, n);
  ctx.charge_elem_ops(Cost::Augment, n);
  ctx.charge_elem_ops(Cost::Prune, n);
}

}  // namespace mcm
