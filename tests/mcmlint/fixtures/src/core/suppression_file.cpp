// Fixture: file-wide suppression. The pragma silences this rule everywhere
// in the file (the pattern query_engine.cpp uses for its host-side latency
// metrics).
// mcmlint: allow-file(no-wallclock-in-sim)

#include <chrono>

namespace mcm {

double fixture_suppressed_file() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace mcm
