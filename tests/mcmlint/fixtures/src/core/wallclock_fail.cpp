// Fixture: no-wallclock-in-sim, failing cases — wall time leaking into
// simulator code outside the tracer/bench/checkpoint allowances.

#include <chrono>

namespace mcm {

double fixture_leaked_wallclock() {
  const auto begin = std::chrono::steady_clock::now();  // mcmlint-expect: no-wallclock-in-sim
  double acc = 0;
  for (int i = 0; i < 100; ++i) acc += i;
  const auto end = std::chrono::steady_clock::now();  // mcmlint-expect: no-wallclock-in-sim
  return std::chrono::duration<double>(end - begin).count() + acc;  // mcmlint-expect: no-wallclock-in-sim
}

}  // namespace mcm
