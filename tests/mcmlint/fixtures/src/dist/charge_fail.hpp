#pragma once
// Fixture: charge-category-total, failing case — a dist/ primitive that
// splits its charges over two ledger categories breaks the Fig. 5
// one-primitive-one-category accounting.

#include "comm/comm.hpp"

namespace mcm {

inline void fixture_split_categories(SimContext& ctx, std::uint64_t n) {
  ctx.charge_elem_ops(Cost::SpMV, n);
  ctx.charge_allreduce(Cost::Augment, ctx.processes());  // mcmlint-expect: charge-category-total
}

// Mixing a literal with the category parameter is also a split: the linter
// cannot prove they are equal, and dist/ code never needs to mix them.
inline void fixture_param_plus_literal(SimContext& ctx, Cost category,
                                       std::uint64_t n) {
  ctx.charge_edge_ops(category, n);
  ctx.charge_elem_ops(Cost::Prune, n);  // mcmlint-expect: charge-category-total
}

}  // namespace mcm
