#pragma once
// Fixture: charge-category-total, passing cases — one ledger category per
// dist/ function, whether named literally or threaded through as the
// conventional `category` parameter.

#include "comm/comm.hpp"

namespace mcm {

// Several charge calls, one literal category.
inline void fixture_single_literal(SimContext& ctx, std::uint64_t n) {
  ctx.charge_elem_ops(Cost::SpMV, n);
  ctx.charge_allreduce(Cost::SpMV, ctx.processes());
}

// The dist/ convention: the caller's category threads through untouched.
inline void fixture_category_param(SimContext& ctx, Cost category,
                                   std::uint64_t n) {
  ctx.charge_edge_ops(category, n);
  // mcmlint: wire-raw — fixture exercises the category rule only
  ctx.charge_alltoallv(category, ctx.processes(), 1, n);
  ctx.charge_elem_ops(category, n);
}

// A function that charges nothing at all is fine.
inline std::uint64_t fixture_no_charges(std::uint64_t n) { return n * 2; }

}  // namespace mcm
