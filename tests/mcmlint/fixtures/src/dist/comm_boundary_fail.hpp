#pragma once
// Fixture: dist-comm-boundary, failing cases — dist/ code reaching into
// gridsim/ internals directly instead of going through the comm facade.

#include "gridsim/context.hpp"  // mcmlint-expect: dist-comm-boundary
#include "gridsim/trace.hpp"  // mcmlint-expect: dist-comm-boundary

// Angle includes and non-gridsim project includes are not this rule's
// business.
#include <vector>
#include "dist/dist_vec.hpp"
#include "util/types.hpp"

namespace mcm {

inline int fixture_boundary_breaker(SimContext& ctx) {
  return ctx.processes();
}

}  // namespace mcm
