#pragma once
// Fixture: dist-comm-boundary, passing case — dist/ code sees the
// simulator only through the comm facade; sibling dist/ and util/ includes
// are fine, as is anything from the standard library.

#include <cstdint>

#include "comm/comm.hpp"
#include "dist/dist_vec.hpp"
#include "util/radix.hpp"
#include "util/types.hpp"

namespace mcm {

inline int fixture_boundary_keeper(SimContext& ctx) {
  return ctx.processes();
}

}  // namespace mcm
