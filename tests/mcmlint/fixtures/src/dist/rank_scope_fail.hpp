#pragma once
// Fixture: rank-scope-required, failing cases.

#include "dist/dist_vec.hpp"

namespace mcm {

// No RankScope/AccessWindow anywhere in the lambda: both accessors flag.
template <typename T>
void fixture_unscoped_loop(SimContext& ctx, DistSpVec<T>& x,
                           DistDenseVec<T>& y) {
  ctx.host().for_ranks(ctx.processes(), [&](std::int64_t r, int) {
    auto& piece = x.piece(static_cast<int>(r));  // mcmlint-expect: rank-scope-required
    y.set(static_cast<Index>(r), piece.nnz());  // mcmlint-expect: rank-scope-required
  });
}

// The scope must *precede* the access: constructing it afterwards is the
// bug mcmcheck would catch at runtime on the first unlucky input.
template <typename T>
void fixture_scope_too_late(SimContext& ctx, DistSpVec<T>& x) {
  ctx.host().for_ranks(ctx.processes(), [&](std::int64_t r, int) {
    auto nnz = x.piece(static_cast<int>(r)).nnz();  // mcmlint-expect: rank-scope-required
    [[maybe_unused]] const check::RankScope scope(static_cast<int>(r), "FIX");
    (void)nnz;
  });
}

}  // namespace mcm
