#pragma once
// Fixture: rank-scope-required, passing cases. Mirrors the shapes in
// dist_primitives.hpp / dist_spmv.hpp / dist_bitmap.hpp.

#include "dist/dist_vec.hpp"

namespace mcm {

// RankScope before the accessors: the canonical per-rank loop body.
template <typename T>
void fixture_scoped_loop(SimContext& ctx, DistSpVec<T>& x,
                         DistDenseVec<T>& y) {
  ctx.host().for_ranks(ctx.processes(), [&](std::int64_t r, int lane) {
    [[maybe_unused]] const check::RankScope scope(static_cast<int>(r), "FIX");
    auto& piece = x.piece(static_cast<int>(r));
    y.set(static_cast<Index>(r), piece.nnz());
  });
}

// AccessWindow is an equally valid bracket (gather-style cross-rank reads).
template <typename T>
void fixture_windowed_loop(SimContext& ctx, const DistSpVec<T>& parts) {
  ctx.host().for_ranks(4, [&](std::int64_t s, int) {
    [[maybe_unused]] const check::AccessWindow window("FIX.expand");
    auto value = parts.at(static_cast<Index>(s));
    (void)value;
  });
}

// A body that touches no Dist* accessor needs no scope at all (fold phase 1
// of SpMV works on plain per-rank buffers).
inline void fixture_plain_buffers(SimContext& ctx, std::vector<int>& out) {
  ctx.host().for_ranks(8, [&](std::int64_t t, int) {
    out[static_cast<std::size_t>(t)] = static_cast<int>(t) * 2;
  });
}

// Accessors outside any for_ranks body are coordinator-side setup and are
// the dynamic checker's business, not this rule's.
template <typename T>
void fixture_coordinator_setup(SimContext& ctx, DistDenseVec<T>& v) {
  for (int r = 0; r < ctx.processes(); ++r) {
    auto& piece = v.piece(r);
    (void)piece;
  }
}

}  // namespace mcm
