#pragma once
// Fixture: rma-epoch-static, failing cases.

#include "dist/rma.hpp"

namespace mcm {

// No epoch at all: every op flags.
inline void fixture_no_epoch(SimContext& ctx, DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  win.put(0, 0, 1);  // mcmlint-expect: rma-epoch-static
  (void)win.get(0, 0);  // mcmlint-expect: rma-epoch-static
}

// Epoch opened on the *other* window: same-window domination is required.
inline void fixture_wrong_window(SimContext& ctx, DistDenseVec<Index>& a,
                                 DistDenseVec<Index>& b) {
  RmaWindow<Index> win_a(ctx, a);
  RmaWindow<Index> win_b(ctx, b);
  win_a.open_epoch(Cost::Augment);
  win_b.put(0, 0, 2);  // mcmlint-expect: rma-epoch-static
  win_a.flush(Cost::Augment);
}

// Op textually before the open: not dominated.
inline void fixture_open_too_late(SimContext& ctx, DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  win.put(0, 0, 1);  // mcmlint-expect: rma-epoch-static
  win.open_epoch(Cost::Augment);
  win.flush(Cost::Augment);
}

}  // namespace mcm
