#pragma once
// Fixture: rma-epoch-static, passing cases. Mirrors core/augment.cpp's
// path-parallel walk.

#include "dist/rma.hpp"

namespace mcm {

// Ops dominated by open_epoch() on the same window, even from inside a
// lambda later in the function (line order approximates dominance).
inline void fixture_epoch_owned(SimContext& ctx, DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  win.open_epoch(Cost::Augment);
  ctx.host().for_ranks(ctx.processes(), [&](std::int64_t oo, int) {
    const int origin = static_cast<int>(oo);
    [[maybe_unused]] const check::RankScope scope(origin, "FIX");
    const Index col = win.get(origin, 0);
    win.put(origin, col, 1);
    (void)win.fetch_and_replace(origin, col, 2);
  });
  win.flush(Cost::Augment);
}

// Two windows, each opened before its own ops.
inline void fixture_two_windows(SimContext& ctx, DistDenseVec<Index>& a,
                                DistDenseVec<Index>& b) {
  RmaWindow<Index> win_a(ctx, a);
  RmaWindow<Index> win_b(ctx, b);
  win_a.open_epoch(Cost::Augment);
  win_b.open_epoch(Cost::Augment);
  win_a.put(0, 0, 1);
  win_b.put(0, 0, 2);
  win_a.flush(Cost::Augment);
  win_b.flush(Cost::Augment);
}

// The caller owns the epoch; this helper is explicitly annotated.
// mcmlint: epoch-external
inline Index fixture_epoch_external_helper(RmaWindow<Index>& win, int origin,
                                           Index row) {
  return win.get(origin, row);
}

}  // namespace mcm
