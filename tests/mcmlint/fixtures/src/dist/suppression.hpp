#pragma once
// Fixture: the suppression grammar. Line-scoped allow() silences exactly
// one rule on one line — trailing or preceding-line comment styles — and
// never bleeds onto other rules or lines.

#include "dist/rma.hpp"

namespace mcm {

// Trailing-comment suppression.
inline void fixture_suppressed_trailing(SimContext& ctx,
                                        DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  win.put(0, 0, 1);  // mcmlint: allow(rma-epoch-static)
}

// Preceding-line suppression.
inline void fixture_suppressed_preceding(SimContext& ctx,
                                         DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  // mcmlint: allow(rma-epoch-static)
  win.put(0, 0, 1);
}

// Suppressing rule A does not silence rule B on the same line, and a
// suppression two lines up does not reach this far down.
inline void fixture_wrong_rule_suppression(SimContext& ctx,
                                           DistDenseVec<Index>& v) {
  RmaWindow<Index> win(ctx, v);
  win.put(0, 0, 1);  // mcmlint: allow(rank-scope-required) -- wrong rule. mcmlint-expect: rma-epoch-static
  // mcmlint: allow(rma-epoch-static)
  (void)0;
  win.put(0, 0, 2);  // mcmlint-expect: rma-epoch-static
}

}  // namespace mcm
