#pragma once
// Fixture: wire-boundary, failing cases — direct collective charges in
// dist/ bypass SimConfig::wire, so the site ships uncompressed words no
// matter what format the run asked for. Also pins that the category rule
// sees wire::charge_* calls: a wire-routed primitive splitting categories
// is still a split.

#include "comm/comm.hpp"
#include "comm/wire.hpp"

namespace mcm {

inline void fixture_direct_allgatherv(SimContext& ctx, std::uint64_t words) {
  ctx.charge_allgatherv(Cost::SpMV, ctx.processes(), 1, words);  // mcmlint-expect: wire-boundary
}

inline void fixture_direct_alltoallv(SimContext& ctx, std::uint64_t words) {
  ctx.charge_elem_ops(Cost::Invert, words);
  ctx.charge_alltoallv(Cost::Invert, ctx.processes(), 1, words);  // mcmlint-expect: wire-boundary
}

// The wire helpers feed the same one-category accounting as direct
// charges: splitting across them is a charge-category-total violation.
inline void fixture_wire_split(SimContext& ctx, std::uint64_t raw,
                               std::uint64_t sent) {
  wire::charge_allgatherv(ctx, Cost::SpMV, ctx.processes(), 1, raw, sent);
  wire::charge_alltoallv(ctx, Cost::Augment, ctx.processes(), 1, raw, sent);  // mcmlint-expect: charge-category-total
}

}  // namespace mcm
