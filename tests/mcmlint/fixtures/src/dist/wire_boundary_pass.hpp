#pragma once
// Fixture: wire-boundary, passing cases — dist/ collectives priced through
// the wire helpers, plus a justified intentional raw charge. Also a pass
// case for charge-category-total over wire_charge events: several wire
// helper calls naming one category are fine.

#include "comm/comm.hpp"
#include "comm/wire.hpp"

namespace mcm {

// The blessed path: raw and encoded word counts through the wire layer.
inline void fixture_wire_routed(SimContext& ctx, Cost category,
                                std::uint64_t raw, std::uint64_t sent) {
  wire::charge_allgatherv(ctx, category, ctx.processes(), 1, raw, sent);
  wire::charge_alltoallv(ctx, category, ctx.processes(), 1, raw, sent);
}

// An opaque payload the codec cannot stream: justified raw charge.
inline void fixture_justified_raw(SimContext& ctx, std::uint64_t words) {
  // mcmlint: wire-raw — opaque struct payload, nothing for the codec to see
  ctx.charge_allgatherv(Cost::Other, ctx.processes(), 1, words);
}

// Non-collective charges never needed the wire layer in the first place.
inline void fixture_non_collective(SimContext& ctx, std::uint64_t n) {
  ctx.charge_elem_ops(Cost::SpMV, n);
  ctx.charge_allreduce(Cost::SpMV, ctx.processes());
}

}  // namespace mcm
