#pragma once
// Fixture: no-wallclock-in-sim, passing case — gridsim/trace.* is the
// designated home of the host clock, so wall-clock use here is allowed by
// path.

#include <chrono>

namespace mcm::trace {

class FixtureHostClock {
 public:
  FixtureHostClock() : epoch_(std::chrono::steady_clock::now()) {}

  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mcm::trace
