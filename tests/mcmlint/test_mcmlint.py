#!/usr/bin/env python3
"""mcmlint self-test: fixture-driven, mirroring compare_bench.py's
injected-regression pattern.

Every fixture under fixtures/src/ declares its expected diagnostics inline:
a `// mcmlint-expect: <rule>` comment marks a line that MUST produce exactly
that diagnostic; a file with no markers MUST lint clean. The runner compares
the exact (rule, file, line) set both ways, so a rule that stops firing,
fires on the wrong line, or misreports its kind fails the test — as does a
rule that starts flagging a passing fixture.

Also checked: --list-rules output matches the rule registry, the CLI exit
codes (1 with findings, 0 clean), and per-rule coverage (each registered
rule must own at least one pass and one fail fixture).

Run: python3 tests/mcmlint/test_mcmlint.py   (wired into ctest as
mcmlint_selftest).
"""

import os
import re
import subprocess
import sys

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(TESTS_DIR))
FIXTURES = os.path.join(TESTS_DIR, "fixtures")
MCMLINT_DIR = os.path.join(REPO, "scripts", "mcmlint")
sys.path.insert(0, MCMLINT_DIR)

import lexer  # noqa: E402
import rules as rules_mod  # noqa: E402
from model import FileModel  # noqa: E402

EXPECT_RE = re.compile(r"mcmlint-expect:\s*([a-z0-9-]+)")

# Which clean fixtures exercise which rule (filename substrings).
PASS_FIXTURE_SLUGS = {
    "rank-scope-required": ("rank_scope_pass",),
    "rma-epoch-static": ("rma_epoch_pass",),
    "no-wallclock-in-sim": ("trace", "suppression_file"),
    "charge-category-total": ("charge_pass", "charge_split_outside_dist"),
    "dist-comm-boundary": ("comm_boundary_pass",),
    "wire-boundary": ("wire_boundary_pass",),
}

failures = []


def check(ok, label, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {label}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(f"{label}: {detail}")


def fixture_files():
    for dirpath, _dirs, names in os.walk(os.path.join(FIXTURES, "src")):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                yield os.path.join(dirpath, name)


def rel(path):
    return os.path.relpath(path, os.path.join(FIXTURES, "src")).replace(
        os.sep, "/"
    )


def lint(path):
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tokens, comments = lexer.tokenize(source)
    model = FileModel(rel(path), tokens, comments)
    return rules_mod.run_rules(model), source


def expected_markers(source):
    expected = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for m in EXPECT_RE.finditer(text):
            expected.add((m.group(1), lineno))
    return expected


def main():
    rule_has_fail = {name: False for name in rules_mod.RULES}
    rule_has_pass = {name: False for name in rules_mod.RULES}

    for path in fixture_files():
        diags, source = lint(path)
        expected = expected_markers(source)
        actual = {(d.rule, d.line) for d in diags}
        relpath = rel(path)
        check(
            actual == expected,
            f"fixture {relpath}",
            f"expected {sorted(expected)}, got "
            f"{sorted((d.rule, d.line, d.message) for d in diags)}",
        )
        for d in diags:
            check(
                d.path == relpath,
                f"fixture {relpath} diagnostic path",
                f"diagnostic carries path {d.path!r}",
            )
        for rule, _line in expected:
            rule_has_fail[rule] = True
        if not expected:
            # A clean fixture is a pass case for the rule(s) it exercises,
            # attributed by filename convention.
            name = os.path.basename(path)
            for rule, slugs in PASS_FIXTURE_SLUGS.items():
                if any(s in name for s in slugs):
                    rule_has_pass[rule] = True

    for rule in rules_mod.RULES:
        check(rule_has_fail[rule], f"rule {rule} has a failing fixture")
        check(rule_has_pass[rule], f"rule {rule} has a passing fixture")

    # --list-rules matches the registry exactly.
    cli = [sys.executable, os.path.join(MCMLINT_DIR, "mcmlint.py")]
    out = subprocess.run(
        cli + ["--list-rules"], capture_output=True, text=True
    )
    check(
        out.returncode == 0
        and out.stdout.split() == list(rules_mod.RULES),
        "--list-rules matches the registry",
        f"rc={out.returncode} stdout={out.stdout!r}",
    )

    # CLI exit codes: 1 over the fixture tree (has failing fixtures), 0 over
    # a clean subtree.
    out = subprocess.run(
        cli + ["--root", FIXTURES, "--frontend", "lex",
               os.path.join(FIXTURES, "src")],
        capture_output=True, text=True,
    )
    check(out.returncode == 1, "CLI exits 1 on findings",
          f"rc={out.returncode} stderr={out.stderr!r}")
    out = subprocess.run(
        cli + ["--root", FIXTURES, "--frontend", "lex",
               os.path.join(FIXTURES, "src", "gridsim")],
        capture_output=True, text=True,
    )
    check(out.returncode == 0, "CLI exits 0 on a clean subtree",
          f"rc={out.returncode} stdout={out.stdout!r}")

    # The real tree must lint clean (the CI gate in miniature).
    out = subprocess.run(
        cli + ["--root", REPO, "--frontend", "lex",
               os.path.join(REPO, "src")],
        capture_output=True, text=True,
    )
    check(out.returncode == 0, "src/ lints clean",
          f"rc={out.returncode} stdout={out.stdout!r}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall mcmlint self-tests passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
