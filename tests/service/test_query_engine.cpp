/// QueryEngine behaviour: admission control, scheduling-policy order, cache
/// integration and error reporting. Most tests run in pump mode (workers=0)
/// so slices execute deterministically on the test thread; policy order is
/// observed through the cache (whoever runs first computes and inserts,
/// identical later queries hit).

#include "service/query_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_helpers.hpp"
#include "core/driver.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

SimConfig make_sim(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return config;
}

QuerySpec make_spec(const std::shared_ptr<const CooMatrix>& graph,
                    int priority = 0, std::uint64_t mcm_seed = 1) {
  QuerySpec spec;
  spec.graph = graph;
  spec.sim = make_sim(4);
  spec.pipeline.mcm.seed = mcm_seed;
  spec.priority = priority;
  return spec;
}

std::shared_ptr<const CooMatrix> corpus_graph(std::size_t i) {
  return std::make_shared<const CooMatrix>(small_corpus()[i].coo);
}

TEST(QueryEngine, CompletesQueriesAndMatchesStandalone) {
  ServiceConfig config;
  config.quantum = 2;
  QueryEngine engine(config);
  const auto graph = corpus_graph(3);  // er_sparse_30x30
  const QuerySpec spec = make_spec(graph);
  const std::uint64_t id = engine.submit(spec);
  const QueryOutcome outcome = engine.wait(id);

  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_GT(outcome.supersteps, 0u);
  EXPECT_GE(outcome.latency_s, outcome.service_s);

  const PipelineResult want = run_pipeline(spec.sim, *graph, spec.pipeline);
  EXPECT_EQ(outcome.result.matching, want.matching);
  EXPECT_EQ(outcome.result.mcm_seconds, want.mcm_seconds);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(QueryEngine, RepeatQueryHitsCache) {
  ServiceConfig config;
  QueryEngine engine(config);
  const auto graph = corpus_graph(4);  // er_dense_20x20
  const std::uint64_t first = engine.submit(make_spec(graph));
  const std::uint64_t second = engine.submit(make_spec(graph));
  const QueryOutcome a = engine.wait(first);
  const QueryOutcome b = engine.wait(second);

  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(b.supersteps, 0u);  // never executed a superstep
  EXPECT_EQ(a.result.matching, b.result.matching);
  EXPECT_EQ(a.result.ledger.time_us(Cost::SpMV),
            b.result.ledger.time_us(Cost::SpMV));

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(QueryEngine, DifferentOptionsMissTheCache) {
  ServiceConfig config;
  QueryEngine engine(config);
  const auto graph = corpus_graph(4);
  const std::uint64_t first = engine.submit(make_spec(graph, 0, /*seed=*/1));
  const std::uint64_t second = engine.submit(make_spec(graph, 0, /*seed=*/2));
  EXPECT_FALSE(engine.wait(first).cache_hit);
  EXPECT_FALSE(engine.wait(second).cache_hit);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

TEST(QueryEngine, PrecomputedFingerprintIsHonoured) {
  ServiceConfig config;
  QueryEngine engine(config);
  const auto graph = corpus_graph(3);
  QuerySpec with_fp = make_spec(graph);
  with_fp.matrix_fingerprint = fingerprint_matrix(*graph);
  const std::uint64_t first = engine.submit(with_fp);
  const std::uint64_t second = engine.submit(make_spec(graph));  // computes fp
  EXPECT_FALSE(engine.wait(first).cache_hit);
  EXPECT_TRUE(engine.wait(second).cache_hit);
}

TEST(QueryEngine, PriorityPolicyRunsHighPriorityFirst) {
  // Identical queries at different priorities: whichever runs first computes
  // and inserts; the other must hit. Submission order is low-then-high, so
  // FIFO would make the high-priority query the hit — Priority reverses it.
  ServiceConfig config;
  config.policy = SchedPolicy::Priority;
  QueryEngine engine(config);
  const auto graph = corpus_graph(4);
  const std::uint64_t low = engine.submit(make_spec(graph, /*priority=*/0));
  const std::uint64_t high = engine.submit(make_spec(graph, /*priority=*/5));
  EXPECT_FALSE(engine.wait(high).cache_hit);
  EXPECT_TRUE(engine.wait(low).cache_hit);
}

TEST(QueryEngine, FifoPolicyIgnoresPriority) {
  ServiceConfig config;
  config.policy = SchedPolicy::Fifo;
  QueryEngine engine(config);
  const auto graph = corpus_graph(4);
  const std::uint64_t low = engine.submit(make_spec(graph, /*priority=*/0));
  const std::uint64_t high = engine.submit(make_spec(graph, /*priority=*/5));
  EXPECT_FALSE(engine.wait(low).cache_hit);
  EXPECT_TRUE(engine.wait(high).cache_hit);
}

TEST(QueryEngine, SmallestWorkRunsSmallQueriesFirst) {
  // Capacity-1 cache as an order probe: big, small, big(dup). Under FIFO
  // the small query's insertion evicts the first big result before the
  // duplicate runs (miss); under SmallestWork the small query runs FIRST,
  // so the two big queries run back-to-back and the duplicate hits.
  const auto big = corpus_graph(3);    // er_sparse_30x30
  const auto small = corpus_graph(1);  // path_4x4

  for (const SchedPolicy policy :
       {SchedPolicy::Fifo, SchedPolicy::SmallestWork}) {
    ServiceConfig config;
    config.policy = policy;
    config.cache_capacity = 1;
    config.quantum = 1000;  // whole query per slice: pure ordering probe
    QueryEngine engine(config);
    const std::uint64_t big1 = engine.submit(make_spec(big));
    const std::uint64_t small1 = engine.submit(make_spec(small));
    const std::uint64_t big2 = engine.submit(make_spec(big));
    EXPECT_FALSE(engine.wait(big1).cache_hit);
    EXPECT_FALSE(engine.wait(small1).cache_hit);
    EXPECT_EQ(engine.wait(big2).cache_hit,
              policy == SchedPolicy::SmallestWork)
        << sched_policy_name(policy);
  }
}

TEST(QueryEngine, AdmissionBoundRefusesAndBlocks) {
  ServiceConfig config;
  config.max_pending = 2;
  QueryEngine engine(config);
  const auto graph = corpus_graph(1);
  ASSERT_TRUE(engine.try_submit(make_spec(graph, 0, 1)).has_value());
  ASSERT_TRUE(engine.try_submit(make_spec(graph, 0, 2)).has_value());
  EXPECT_EQ(engine.pending(), 2u);
  EXPECT_FALSE(engine.try_submit(make_spec(graph, 0, 3)).has_value());

  // Blocking submit makes room by pumping queries to completion itself.
  const std::uint64_t id = engine.submit(make_spec(graph, 0, 4));
  EXPECT_GT(id, 0u);
  EXPECT_LE(engine.pending(), 2u);
  const std::vector<QueryOutcome> outcomes = engine.drain();
  EXPECT_EQ(outcomes.size(), 3u);
  for (const QueryOutcome& o : outcomes) EXPECT_TRUE(o.ok()) << o.error;
}

TEST(QueryEngine, DrainReturnsOutcomesInSubmissionOrder) {
  ServiceConfig config;
  config.cache_capacity = 0;  // every query executes
  QueryEngine engine(config);
  std::vector<std::uint64_t> ids;
  for (const std::size_t g : {1u, 2u, 4u, 7u}) {
    ids.push_back(engine.submit(make_spec(corpus_graph(g))));
  }
  const std::vector<QueryOutcome> outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(outcomes[i].id, ids[i]);
    EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
  }
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_TRUE(engine.drain().empty());  // nothing left to return
}

TEST(QueryEngine, RejectsUnsupportedSpecs) {
  QueryEngine engine(ServiceConfig{});
  const auto graph = corpus_graph(1);

  QuerySpec no_graph;
  EXPECT_THROW((void)engine.submit(no_graph), std::invalid_argument);

  QuerySpec resume = make_spec(graph);
  resume.pipeline.resume = true;
  EXPECT_THROW((void)engine.submit(resume), std::invalid_argument);

  QuerySpec faulty = make_spec(graph);
  faulty.pipeline.faults = std::make_shared<FaultPlan>();
  EXPECT_THROW((void)engine.submit(faulty), std::invalid_argument);

  QuerySpec checkpointed = make_spec(graph);
  checkpointed.pipeline.mcm.checkpoint.dir = "/tmp/ckpt";
  EXPECT_THROW((void)engine.submit(checkpointed), std::invalid_argument);
}

TEST(QueryEngine, RejectsBadConfig) {
  ServiceConfig config;
  config.workers = -1;
  EXPECT_THROW(QueryEngine{config}, std::invalid_argument);
  config = {};
  config.lanes_per_worker = 0;
  EXPECT_THROW(QueryEngine{config}, std::invalid_argument);
  config = {};
  config.max_pending = 0;
  EXPECT_THROW(QueryEngine{config}, std::invalid_argument);
  config = {};
  config.quantum = 0;
  EXPECT_THROW(QueryEngine{config}, std::invalid_argument);
}

TEST(QueryEngine, ExecutionErrorsAreReportedPerQuery) {
  QueryEngine engine(ServiceConfig{});
  QuerySpec bad = make_spec(corpus_graph(1));
  bad.sim.cores = 3;
  bad.sim.threads_per_process = 2;  // 3 cores / 2 tpp: invalid grid
  const std::uint64_t bad_id = engine.submit(bad);
  const std::uint64_t good_id = engine.submit(make_spec(corpus_graph(1)));

  const QueryOutcome bad_outcome = engine.wait(bad_id);
  EXPECT_FALSE(bad_outcome.ok());
  EXPECT_FALSE(bad_outcome.error.empty());
  // A failed query must not poison the service or the cache.
  const QueryOutcome good_outcome = engine.wait(good_id);
  EXPECT_TRUE(good_outcome.ok()) << good_outcome.error;
}

TEST(QueryEngine, WaitTwiceThrows) {
  QueryEngine engine(ServiceConfig{});
  const std::uint64_t id = engine.submit(make_spec(corpus_graph(1)));
  (void)engine.wait(id);
  EXPECT_THROW((void)engine.wait(id), std::invalid_argument);
}

TEST(QueryEngine, PumpOutsidePumpModeThrows) {
  ServiceConfig config;
  config.workers = 1;
  QueryEngine engine(config);
  EXPECT_THROW((void)engine.pump(), std::logic_error);
}

TEST(QueryEngine, PumpReturnsFalseWhenIdle) {
  QueryEngine engine(ServiceConfig{});
  EXPECT_FALSE(engine.pump());
}

TEST(QueryEngine, WorkerModeCompletesAllQueries) {
  ServiceConfig config;
  config.workers = 4;
  config.lanes_per_worker = 2;
  config.quantum = 2;
  config.cache_capacity = 0;  // force every query to execute fully
  QueryEngine engine(config);

  const auto corpus = small_corpus();
  std::vector<std::shared_ptr<const CooMatrix>> graphs;
  std::vector<std::uint64_t> ids;
  for (const std::size_t g : {1u, 3u, 4u, 7u, 8u, 9u}) {
    graphs.push_back(std::make_shared<const CooMatrix>(corpus[g].coo));
    ids.push_back(engine.submit(make_spec(graphs.back())));
  }
  const std::vector<QueryOutcome> outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), ids.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    const QuerySpec spec = make_spec(graphs[i]);
    const PipelineResult want =
        run_pipeline(spec.sim, *graphs[i], spec.pipeline);
    EXPECT_EQ(outcomes[i].result.matching, want.matching) << i;
  }
  // The worker engines actually dispatched rank loops.
  EXPECT_GT(engine.lane_stats().loops, 0u);
}

TEST(SchedPolicyNames, RoundTrip) {
  for (const SchedPolicy policy : {SchedPolicy::Fifo, SchedPolicy::Priority,
                                   SchedPolicy::SmallestWork}) {
    EXPECT_EQ(parse_sched_policy(sched_policy_name(policy)), policy);
  }
  EXPECT_THROW((void)parse_sched_policy("round-robin"), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
