#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace mcm {
namespace {

using testing::small_corpus;

PipelineResult result_tagged(double tag) {
  PipelineResult r;
  r.init_seconds = tag;  // enough to tell entries apart
  return r;
}

TEST(FingerprintMatrix, IdentifiesGraphsByShapeAndEdges) {
  const auto corpus = small_corpus();
  const std::uint64_t base = fingerprint_matrix(corpus[3].coo);
  EXPECT_EQ(fingerprint_matrix(corpus[3].coo), base);  // deterministic

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (i == 3) continue;
    EXPECT_NE(fingerprint_matrix(corpus[i].coo), base) << corpus[i].name;
  }

  // Shape is part of the identity even with no edges.
  EXPECT_NE(fingerprint_matrix(CooMatrix(5, 7)), fingerprint_matrix(CooMatrix(7, 5)));

  // A single moved edge changes the digest.
  CooMatrix a(4, 4);
  a.add_edge(0, 0);
  a.add_edge(1, 1);
  CooMatrix b(4, 4);
  b.add_edge(0, 0);
  b.add_edge(1, 2);
  EXPECT_NE(fingerprint_matrix(a), fingerprint_matrix(b));
}

TEST(FingerprintQueryOptions, MixesEveryResultAffectingKnob) {
  SimConfig sim;
  PipelineOptions pipeline;
  const std::uint64_t base = fingerprint_query_options(sim, pipeline);
  EXPECT_EQ(fingerprint_query_options(sim, pipeline), base);

  {
    SimConfig s = sim;
    s.cores = sim.cores * 2;
    EXPECT_NE(fingerprint_query_options(s, pipeline), base);
  }
  {
    SimConfig s = sim;
    s.threads_per_process = sim.threads_per_process / 2;
    EXPECT_NE(fingerprint_query_options(s, pipeline), base);
  }
  {
    SimConfig s = sim;
    s.machine.alpha_us *= 2.0;
    EXPECT_NE(fingerprint_query_options(s, pipeline), base);
  }
  {
    PipelineOptions p = pipeline;
    p.random_permute = !p.random_permute;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
  {
    PipelineOptions p = pipeline;
    p.permute_seed += 1;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
  {
    PipelineOptions p = pipeline;
    p.initializer = MaximalKind::Greedy;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
  {
    PipelineOptions p = pipeline;
    p.mcm.enable_prune = !p.mcm.enable_prune;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
  {
    PipelineOptions p = pipeline;
    p.mcm.seed += 1;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
  {
    PipelineOptions p = pipeline;
    p.mcm.use_mask = !p.mcm.use_mask;
    EXPECT_NE(fingerprint_query_options(sim, p), base);
  }
}

TEST(FingerprintQueryOptions, ExcludesHostAndCheckpointKnobs) {
  // Host lanes and checkpoint config never change results or charges
  // (determinism contract), so distinct values must share one cache key.
  SimConfig sim;
  PipelineOptions pipeline;
  const std::uint64_t base = fingerprint_query_options(sim, pipeline);

  SimConfig s = sim;
  s.host_threads = 8;
  s.host_deterministic = true;
  EXPECT_EQ(fingerprint_query_options(s, pipeline), base);

  PipelineOptions p = pipeline;
  p.mcm.checkpoint.dir = "/tmp/somewhere";
  p.mcm.checkpoint.every = 3;
  EXPECT_EQ(fingerprint_query_options(sim, p), base);
}

TEST(ResultCache, HitsMissesAndStats) {
  ResultCache cache(4);
  const CacheKey key{1, 2};
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, result_tagged(1.0));
  const auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->init_seconds, 1.0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(CacheKey{1, 0}, result_tagged(1.0));
  cache.insert(CacheKey{2, 0}, result_tagged(2.0));
  ASSERT_NE(cache.lookup(CacheKey{1, 0}), nullptr);  // 1 is now MRU
  cache.insert(CacheKey{3, 0}, result_tagged(3.0));  // evicts 2, not 1

  EXPECT_NE(cache.lookup(CacheKey{1, 0}), nullptr);
  EXPECT_EQ(cache.lookup(CacheKey{2, 0}), nullptr);
  EXPECT_NE(cache.lookup(CacheKey{3, 0}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  cache.insert(CacheKey{1, 0}, result_tagged(1.0));
  cache.insert(CacheKey{1, 0}, result_tagged(1.5));  // racing twin
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  const auto hit = cache.lookup(CacheKey{1, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->init_seconds, 1.5);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.insert(CacheKey{1, 0}, result_tagged(1.0));
  EXPECT_EQ(cache.lookup(CacheKey{1, 0}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, DistinctOptionsFingerprintsDoNotAlias) {
  ResultCache cache(4);
  cache.insert(CacheKey{1, 10}, result_tagged(1.0));
  EXPECT_EQ(cache.lookup(CacheKey{1, 11}), nullptr);
  EXPECT_EQ(cache.lookup(CacheKey{2, 10}), nullptr);
}

TEST(ResultCache, InvalidateRetiresOnlyTheSupersededFingerprint) {
  ResultCache cache(8);
  // Graph 1 cached under two option fingerprints; graph 2 under one.
  cache.insert(CacheKey{1, 10}, result_tagged(1.0));
  cache.insert(CacheKey{1, 11}, result_tagged(1.1));
  cache.insert(CacheKey{2, 10}, result_tagged(2.0));

  EXPECT_EQ(cache.invalidate(1), 2u);  // every options variant of graph 1
  EXPECT_EQ(cache.lookup(CacheKey{1, 10}), nullptr);
  EXPECT_EQ(cache.lookup(CacheKey{1, 11}), nullptr);
  EXPECT_NE(cache.lookup(CacheKey{2, 10}), nullptr);  // other graphs survive
  EXPECT_EQ(cache.size(), 1u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.evictions, 0u);  // retirement is not LRU aging
}

TEST(ResultCache, InvalidateUnknownFingerprintIsANoOp) {
  ResultCache cache(4);
  cache.insert(CacheKey{1, 0}, result_tagged(1.0));
  EXPECT_EQ(cache.invalidate(99), 0u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(CacheKey{1, 0}), nullptr);
}

}  // namespace
}  // namespace mcm
