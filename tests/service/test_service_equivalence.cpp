/// Interleaving-equivalence property (the service's core guarantee): for
/// every grid size p in {1,4,16}, host-lane count in {1,4} and scheduling
/// policy, a query's matching, stats and complete per-category CostLedger
/// must be bit-identical to a standalone run_pipeline() call — the scheduler
/// may reorder and interleave supersteps of different queries, but can never
/// leak state between them. The cache is disabled so every query executes.
///
/// CI runs the tests_service binary in the Debug + MCM_CHECK job, so the
/// distributed invariant checks are live while queries interleave.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "core/driver.hpp"
#include "service/query_engine.hpp"

namespace mcm {
namespace {

using testing::NamedGraph;
using testing::small_corpus;

void expect_ledgers_identical(const CostLedger& got, const CostLedger& want,
                              const std::string& label) {
  for (int c = 0; c < static_cast<int>(Cost::kCount); ++c) {
    const auto category = static_cast<Cost>(c);
    EXPECT_EQ(got.time_us(category), want.time_us(category))
        << label << ": time_us differs in category " << c;
    EXPECT_EQ(got.messages(category), want.messages(category))
        << label << ": messages differ in category " << c;
    EXPECT_EQ(got.words(category), want.words(category))
        << label << ": words differ in category " << c;
  }
}

void expect_stats_identical(const McmDistStats& got, const McmDistStats& want,
                            const std::string& label) {
  EXPECT_EQ(got.phases, want.phases) << label;
  EXPECT_EQ(got.iterations, want.iterations) << label;
  EXPECT_EQ(got.bottom_up_iterations, want.bottom_up_iterations) << label;
  EXPECT_EQ(got.augmentations, want.augmentations) << label;
  EXPECT_EQ(got.initial_cardinality, want.initial_cardinality) << label;
  EXPECT_EQ(got.final_cardinality, want.final_cardinality) << label;
}

/// The query mix: structurally diverse graphs so interleaved queries are at
/// different phases/iterations at any instant, with varied priorities so
/// Priority and SmallestWork actually reorder execution.
struct Mix {
  std::shared_ptr<const CooMatrix> graph;
  std::string name;
  int priority;
};

std::vector<Mix> make_mix() {
  const auto corpus = small_corpus();
  std::vector<Mix> mix;
  int priority = 0;
  for (const std::size_t g : {1u, 3u, 4u, 7u, 9u, 10u}) {
    mix.push_back({std::make_shared<const CooMatrix>(corpus[g].coo),
                   corpus[g].name, priority});
    priority = (priority + 1) % 3;
  }
  return mix;
}

QuerySpec make_spec(const Mix& m, int processes) {
  QuerySpec spec;
  spec.graph = m.graph;
  spec.sim.cores = processes;
  spec.sim.threads_per_process = 1;
  spec.priority = m.priority;
  return spec;
}

TEST(ServiceEquivalence, InterleavedQueriesMatchStandaloneBitForBit) {
  const std::vector<Mix> mix = make_mix();
  for (const int p : {1, 4, 16}) {
    // Standalone references, one per query, on fresh private contexts.
    std::vector<PipelineResult> want;
    want.reserve(mix.size());
    for (const Mix& m : mix) {
      const QuerySpec spec = make_spec(m, p);
      want.push_back(run_pipeline(spec.sim, *m.graph, spec.pipeline));
    }

    for (const int lanes : {1, 4}) {
      for (const SchedPolicy policy :
           {SchedPolicy::Fifo, SchedPolicy::Priority,
            SchedPolicy::SmallestWork}) {
        ServiceConfig config;
        config.policy = policy;
        config.lanes_per_worker = lanes;
        config.quantum = 2;        // fine-grained: maximum interleaving
        config.cache_capacity = 0; // every query must actually execute
        QueryEngine engine(config);
        for (const Mix& m : mix) {
          (void)engine.submit(make_spec(m, p));
        }
        const std::vector<QueryOutcome> outcomes = engine.drain();
        ASSERT_EQ(outcomes.size(), mix.size());
        for (std::size_t i = 0; i < mix.size(); ++i) {
          const std::string label = mix[i].name + " p=" + std::to_string(p)
                                    + " lanes=" + std::to_string(lanes) + " "
                                    + sched_policy_name(policy);
          ASSERT_TRUE(outcomes[i].ok()) << label << ": " << outcomes[i].error;
          EXPECT_FALSE(outcomes[i].cache_hit) << label;
          EXPECT_EQ(outcomes[i].result.matching, want[i].matching) << label;
          EXPECT_EQ(outcomes[i].result.init_seconds, want[i].init_seconds)
              << label;
          EXPECT_EQ(outcomes[i].result.mcm_seconds, want[i].mcm_seconds)
              << label;
          expect_stats_identical(outcomes[i].result.mcm_stats,
                                 want[i].mcm_stats, label);
          expect_ledgers_identical(outcomes[i].result.ledger, want[i].ledger,
                                   label);
        }
      }
    }
  }
}

TEST(ServiceEquivalence, WorkerThreadsPreserveBitIdenticalResults) {
  // Same property with real worker threads racing over shared scheduler
  // state and queries migrating between per-worker engines mid-run.
  const std::vector<Mix> mix = make_mix();
  const int p = 4;
  std::vector<PipelineResult> want;
  for (const Mix& m : mix) {
    const QuerySpec spec = make_spec(m, p);
    want.push_back(run_pipeline(spec.sim, *m.graph, spec.pipeline));
  }

  ServiceConfig config;
  config.workers = 4;
  config.lanes_per_worker = 2;
  config.quantum = 1;  // migrate engines as often as possible
  config.cache_capacity = 0;
  QueryEngine engine(config);
  for (const Mix& m : mix) (void)engine.submit(make_spec(m, p));
  const std::vector<QueryOutcome> outcomes = engine.drain();
  ASSERT_EQ(outcomes.size(), mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << mix[i].name << ": " << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result.matching, want[i].matching) << mix[i].name;
    EXPECT_EQ(outcomes[i].result.mcm_seconds, want[i].mcm_seconds)
        << mix[i].name;
    expect_ledgers_identical(outcomes[i].result.ledger, want[i].ledger,
                             mix[i].name);
  }
}

}  // namespace
}  // namespace mcm
