/// UpdateQuery + graph registry (DESIGN.md §5.10 service layer): update
/// queries mutate a registered graph copy-on-write, retire cached results
/// for the superseded fingerprint, and interleave with solve queries under
/// the ordinary scheduler. Solves by handle resolve the version current at
/// their first slice, so FIFO pump mode gives exact stream semantics.

#include "service/query_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "../test_helpers.hpp"
#include "gen/workload.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matrix/csc.hpp"

namespace mcm {
namespace {

using testing::small_corpus;

SimConfig make_sim(int processes) {
  SimConfig config;
  config.cores = processes;
  config.threads_per_process = 1;
  return config;
}

QuerySpec solve_by_handle(std::uint64_t handle) {
  QuerySpec spec;
  spec.graph_handle = handle;
  spec.sim = make_sim(4);
  return spec;
}

QuerySpec update_spec(std::uint64_t handle, std::vector<EdgeUpdate> updates) {
  QuerySpec spec;
  spec.graph_handle = handle;
  spec.updates =
      std::make_shared<const std::vector<EdgeUpdate>>(std::move(updates));
  return spec;
}

Index oracle_cardinality(const CooMatrix& a) {
  return hopcroft_karp(CscMatrix::from_coo(a)).cardinality();
}

TEST(UpdateQuery, MutatesRegisteredGraphAndInvalidatesCache) {
  ServiceConfig config;
  QueryEngine engine(config);
  const CooMatrix base = small_corpus()[3].coo;  // er_sparse_30x30
  const std::uint64_t handle = engine.register_graph(base);
  ASSERT_GE(handle, 1u);

  // Solve once (miss + insert), solve again (hit).
  const QueryOutcome first = engine.wait(engine.submit(solve_by_handle(handle)));
  ASSERT_TRUE(first.ok()) << first.error;
  const QueryOutcome second =
      engine.wait(engine.submit(solve_by_handle(handle)));
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cache_hit);

  // Mutate: delete the first stored edge, insert a fresh one.
  const QueryEngine::GraphSnapshot before = engine.graph_snapshot(handle);
  const QueryOutcome update = engine.wait(engine.submit(update_spec(
      handle, {{UpdateKind::Delete, base.rows[0], base.cols[0]}})));
  ASSERT_TRUE(update.ok()) << update.error;
  EXPECT_TRUE(update.update_query);
  EXPECT_EQ(update.updates_applied, 1u);
  EXPECT_EQ(update.invalidated, 1u);  // the cached solve was retired
  EXPECT_EQ(engine.cache_stats().invalidations, 1u);

  const QueryEngine::GraphSnapshot after = engine.graph_snapshot(handle);
  EXPECT_NE(after.matrix_fp, before.matrix_fp);
  EXPECT_EQ(after.graph->nnz(), base.nnz() - 1);
  // The pre-update snapshot is untouched (copy-on-write).
  EXPECT_EQ(before.graph->nnz(), base.nnz());

  // A solve after the update misses (its fingerprint is new) and matches
  // the oracle on the mutated graph.
  const QueryOutcome third =
      engine.wait(engine.submit(solve_by_handle(handle)));
  ASSERT_TRUE(third.ok()) << third.error;
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.result.matching.cardinality(),
            oracle_cardinality(*after.graph));
}

TEST(UpdateQuery, InterleavesWithSolvesInStreamOrder) {
  ServiceConfig config;
  QueryEngine engine(config);
  Rng rng(7);
  const CooMatrix base = er_bipartite_m(20, 20, 60, rng);
  const std::uint64_t handle = engine.register_graph(base);

  ChurnConfig churn;
  churn.updates = 12;
  churn.seed = 11;
  const std::vector<EdgeUpdate> stream = make_churn(base, churn);

  // Alternate update / solve; FIFO pump mode runs them in admission order,
  // so each solve sees exactly the prefix admitted before it.
  CooMatrix mutated = base;
  std::vector<std::uint64_t> solve_ids;
  std::vector<Index> want;
  for (std::size_t k = 0; k < stream.size(); k += 3) {
    std::vector<EdgeUpdate> batch(
        stream.begin() + static_cast<std::ptrdiff_t>(k),
        stream.begin() + static_cast<std::ptrdiff_t>(
                             std::min(k + 3, stream.size())));
    mutated = apply_edge_updates(mutated, batch);
    (void)engine.submit(update_spec(handle, std::move(batch)));
    solve_ids.push_back(engine.submit(solve_by_handle(handle)));
    want.push_back(oracle_cardinality(mutated));
  }
  for (std::size_t k = 0; k < solve_ids.size(); ++k) {
    const QueryOutcome outcome = engine.wait(solve_ids[k]);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_EQ(outcome.result.matching.cardinality(), want[k])
        << "solve " << k;
  }
}

TEST(UpdateQuery, NoOpBatchKeepsFingerprintAndCache) {
  ServiceConfig config;
  QueryEngine engine(config);
  const CooMatrix base = small_corpus()[4].coo;  // er_dense_20x20
  const std::uint64_t handle = engine.register_graph(base);
  (void)engine.wait(engine.submit(solve_by_handle(handle)));
  const QueryEngine::GraphSnapshot before = engine.graph_snapshot(handle);

  // Deleting an absent edge leaves the canonical graph unchanged, so the
  // fingerprint survives and cached results stay valid.
  CooMatrix sorted = base;
  sorted.sort_dedup();
  ASSERT_EQ(fingerprint_matrix(sorted), before.matrix_fp);
  const QueryOutcome update = engine.wait(engine.submit(
      update_spec(handle, {{UpdateKind::Insert, base.rows[0], base.cols[0]}})));
  ASSERT_TRUE(update.ok()) << update.error;
  EXPECT_EQ(update.invalidated, 0u);
  EXPECT_EQ(engine.graph_snapshot(handle).matrix_fp, before.matrix_fp);

  const QueryOutcome solve = engine.wait(engine.submit(solve_by_handle(handle)));
  ASSERT_TRUE(solve.ok()) << solve.error;
  EXPECT_TRUE(solve.cache_hit);
}

TEST(UpdateQuery, ValidationRejectsMalformedSpecs) {
  ServiceConfig config;
  QueryEngine engine(config);
  const auto graph = std::make_shared<const CooMatrix>(small_corpus()[1].coo);

  QuerySpec no_handle;
  no_handle.sim = make_sim(1);
  no_handle.updates = std::make_shared<const std::vector<EdgeUpdate>>();
  EXPECT_THROW(engine.submit(no_handle), std::invalid_argument);

  QuerySpec both = update_spec(1, {});
  both.graph = graph;
  EXPECT_THROW(engine.submit(both), std::invalid_argument);

  QuerySpec ambiguous;
  ambiguous.sim = make_sim(1);
  ambiguous.graph = graph;
  ambiguous.graph_handle = 1;
  EXPECT_THROW(engine.submit(ambiguous), std::invalid_argument);

  EXPECT_THROW((void)engine.graph_snapshot(99), std::invalid_argument);

  // Unknown handle surfaces as a failed outcome, not a crash: the handle is
  // only resolved when the slice runs.
  const QueryOutcome outcome = engine.wait(engine.submit(update_spec(42, {})));
  EXPECT_FALSE(outcome.ok());
}

TEST(UpdateQuery, WorkerModeAppliesUpdatesSafely) {
  ServiceConfig config;
  config.workers = 3;
  config.quantum = 2;
  QueryEngine engine(config);
  Rng rng(13);
  const CooMatrix base = er_bipartite_m(16, 16, 48, rng);
  const std::uint64_t handle = engine.register_graph(base);
  ChurnConfig churn;
  churn.updates = 9;
  churn.seed = 17;
  const std::vector<EdgeUpdate> stream = make_churn(base, churn);
  for (std::size_t k = 0; k < stream.size(); k += 3) {
    (void)engine.submit(update_spec(
        handle, {stream.begin() + static_cast<std::ptrdiff_t>(k),
                 stream.begin() + static_cast<std::ptrdiff_t>(k + 3)}));
    (void)engine.submit(solve_by_handle(handle));
  }
  const std::vector<QueryOutcome> outcomes = engine.drain();
  for (const QueryOutcome& o : outcomes) {
    EXPECT_TRUE(o.ok()) << o.error;
  }
  // After the drain every update has landed; the final registered graph is
  // the full stream applied.
  const CooMatrix want = apply_edge_updates(base, stream);
  const QueryEngine::GraphSnapshot snap = engine.graph_snapshot(handle);
  EXPECT_EQ(snap.graph->rows, want.rows);
  EXPECT_EQ(snap.graph->cols, want.cols);
}

}  // namespace
}  // namespace mcm
