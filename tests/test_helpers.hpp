#pragma once
/// Shared corpus of small test graphs used by the matching / dist / core
/// property tests. Sizes are kept small enough that the Hopcroft-Karp oracle
/// and per-grid-size distributed runs stay fast, while covering the
/// structural classes that exercise different code paths: square/rectangular,
/// dense/sparse, high-diameter meshes, skewed RMAT, planted perfect
/// matchings, and degenerate shapes (empty graph, isolated vertices).

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/coo.hpp"
#include "util/rng.hpp"

namespace mcm::testing {

struct NamedGraph {
  std::string name;
  CooMatrix coo;
};

inline std::vector<NamedGraph> small_corpus(std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"empty_5x7", CooMatrix(5, 7)});

  {
    CooMatrix path(4, 4);  // alternating path graph
    path.add_edge(0, 0);
    path.add_edge(1, 0);
    path.add_edge(1, 1);
    path.add_edge(2, 1);
    path.add_edge(2, 2);
    path.add_edge(3, 2);
    path.add_edge(3, 3);
    graphs.push_back({"path_4x4", path});
  }
  {
    CooMatrix star(5, 5);  // one column adjacent to all rows, rest isolated
    for (Index i = 0; i < 5; ++i) star.add_edge(i, 0);
    graphs.push_back({"star_5x5", star});
  }
  graphs.push_back({"er_sparse_30x30", er_bipartite_m(30, 30, 60, rng)});
  graphs.push_back({"er_dense_20x20", er_bipartite_m(20, 20, 200, rng)});
  graphs.push_back({"rect_tall_40x15", er_bipartite_m(40, 15, 120, rng)});
  graphs.push_back({"rect_wide_12x35", er_bipartite_m(12, 35, 100, rng)});
  graphs.push_back({"planted_perfect_25", planted_perfect(25, 50, rng)});
  graphs.push_back({"grid_mesh_8x8", grid_mesh(8, 8, 0.3, 0.15, rng)});
  {
    RmatParams p = RmatParams::g500(6);
    p.edge_factor = 4.0;
    graphs.push_back({"rmat_g500_64", rmat(p, rng)});
  }
  graphs.push_back({"banded_30", banded(30, 2, 0.6, rng)});
  graphs.push_back({"kkt_small", kkt_block(30, 12, 1, 0.05, rng)});
  return graphs;
}

/// Larger instances for the heavier integration tests (still < 1s each).
inline std::vector<NamedGraph> medium_corpus(std::uint64_t seed = 43) {
  Rng rng(seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"er_300x300", er_bipartite_m(300, 300, 1500, rng)});
  graphs.push_back({"grid_20x20", grid_mesh(20, 20, 0.2, 0.1, rng)});
  {
    RmatParams p = RmatParams::g500(9);
    p.edge_factor = 6.0;
    graphs.push_back({"rmat_g500_512", rmat(p, rng)});
  }
  graphs.push_back({"planted_200", planted_perfect(200, 600, rng)});
  graphs.push_back({"tall_500x120", tall_rectangular(500, 120, 6.0, 0.1, rng)});
  return graphs;
}

/// Minimal recursive-descent JSON validator for the builder / trace-exporter
/// tests. Checks RFC 8259 structure only (no number-range or UTF-8 pedantry):
/// balanced containers, comma/colon placement, string escapes, and the
/// null/true/false/number terminals. Returns false instead of throwing so
/// EXPECT_TRUE gives a usable failure line.
class JsonValidator {
 public:
  static bool valid(const std::string& text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == '}') { ++pos_; return true; }
      if (peek() != ',') return false;
      ++pos_;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ']') { ++pos_; return true; }
      if (peek() != ',') return false;
      ++pos_;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: must be escaped
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    (void)std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace mcm::testing
