#pragma once
/// Shared corpus of small test graphs used by the matching / dist / core
/// property tests. Sizes are kept small enough that the Hopcroft-Karp oracle
/// and per-grid-size distributed runs stay fast, while covering the
/// structural classes that exercise different code paths: square/rectangular,
/// dense/sparse, high-diameter meshes, skewed RMAT, planted perfect
/// matchings, and degenerate shapes (empty graph, isolated vertices).

#include <string>
#include <vector>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/coo.hpp"
#include "util/rng.hpp"

namespace mcm::testing {

struct NamedGraph {
  std::string name;
  CooMatrix coo;
};

inline std::vector<NamedGraph> small_corpus(std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"empty_5x7", CooMatrix(5, 7)});

  {
    CooMatrix path(4, 4);  // alternating path graph
    path.add_edge(0, 0);
    path.add_edge(1, 0);
    path.add_edge(1, 1);
    path.add_edge(2, 1);
    path.add_edge(2, 2);
    path.add_edge(3, 2);
    path.add_edge(3, 3);
    graphs.push_back({"path_4x4", path});
  }
  {
    CooMatrix star(5, 5);  // one column adjacent to all rows, rest isolated
    for (Index i = 0; i < 5; ++i) star.add_edge(i, 0);
    graphs.push_back({"star_5x5", star});
  }
  graphs.push_back({"er_sparse_30x30", er_bipartite_m(30, 30, 60, rng)});
  graphs.push_back({"er_dense_20x20", er_bipartite_m(20, 20, 200, rng)});
  graphs.push_back({"rect_tall_40x15", er_bipartite_m(40, 15, 120, rng)});
  graphs.push_back({"rect_wide_12x35", er_bipartite_m(12, 35, 100, rng)});
  graphs.push_back({"planted_perfect_25", planted_perfect(25, 50, rng)});
  graphs.push_back({"grid_mesh_8x8", grid_mesh(8, 8, 0.3, 0.15, rng)});
  {
    RmatParams p = RmatParams::g500(6);
    p.edge_factor = 4.0;
    graphs.push_back({"rmat_g500_64", rmat(p, rng)});
  }
  graphs.push_back({"banded_30", banded(30, 2, 0.6, rng)});
  graphs.push_back({"kkt_small", kkt_block(30, 12, 1, 0.05, rng)});
  return graphs;
}

/// Larger instances for the heavier integration tests (still < 1s each).
inline std::vector<NamedGraph> medium_corpus(std::uint64_t seed = 43) {
  Rng rng(seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"er_300x300", er_bipartite_m(300, 300, 1500, rng)});
  graphs.push_back({"grid_20x20", grid_mesh(20, 20, 0.2, 0.1, rng)});
  {
    RmatParams p = RmatParams::g500(9);
    p.edge_factor = 6.0;
    graphs.push_back({"rmat_g500_512", rmat(p, rng)});
  }
  graphs.push_back({"planted_200", planted_perfect(200, 600, rng)});
  graphs.push_back({"tall_500x120", tall_rectangular(500, 120, 6.0, 0.1, rng)});
  return graphs;
}

}  // namespace mcm::testing
