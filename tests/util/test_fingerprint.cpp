#include "util/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mcm {
namespace {

// Reference FNV-1a vectors (64-bit offset basis / prime). These pin the
// algorithm itself: the checkpoint payload checksum is persisted on disk, so
// any drift here would silently orphan every existing snapshot.
TEST(Fingerprint, MatchesKnownFnv1aVectors) {
  EXPECT_EQ(fnv1a(std::string()), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a(std::string("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(std::string("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fingerprint, OneShotHandlesEmbeddedNulAndHighBytes) {
  const std::string bytes{"\x00\xff\x7f\x01", 4};
  // Recompute by the definition to guard against signed-char mishaps.
  std::uint64_t h = kFnv1aOffsetBasis;
  for (const unsigned char c : {0x00, 0xff, 0x7f, 0x01}) {
    h ^= c;
    h *= kFnv1aPrime;
  }
  EXPECT_EQ(fnv1a(bytes), h);
}

TEST(Fingerprint, StreamingMatchesOneShotConcatenation) {
  const std::string a = "hello ";
  const std::string b = "world";
  Fingerprint fp;
  fp.mix_bytes(a.data(), a.size()).mix_bytes(b.data(), b.size());
  EXPECT_EQ(fp.digest(), fnv1a(a + b));
}

TEST(Fingerprint, EmptyDigestIsOffsetBasis) {
  EXPECT_EQ(Fingerprint().digest(), kFnv1aOffsetBasis);
}

TEST(Fingerprint, ScalarMixIsOrderSensitive) {
  Fingerprint ab;
  ab.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  Fingerprint ba;
  ba.mix(std::uint64_t{2}).mix(std::uint64_t{1});
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Fingerprint, StringMixIsLengthPrefixed) {
  // Without length prefixing ("ab","c") and ("a","bc") would collide.
  Fingerprint left;
  left.mix(std::string("ab")).mix(std::string("c"));
  Fingerprint right;
  right.mix(std::string("a")).mix(std::string("bc"));
  EXPECT_NE(left.digest(), right.digest());
}

TEST(Fingerprint, ArrayMixIsCountPrefixed) {
  const std::vector<std::uint32_t> one{7};
  const std::vector<std::uint32_t> none;
  Fingerprint with;
  with.mix_array(one.data(), one.size());
  Fingerprint without;
  without.mix_array(none.data(), none.size());
  without.mix(std::uint32_t{7});
  EXPECT_NE(with.digest(), without.digest());
}

TEST(Fingerprint, SameInputsSameDigest) {
  auto build = [] {
    Fingerprint fp;
    fp.mix(std::uint64_t{42})
        .mix(std::string("rmat_g500"))
        .mix(false)
        .mix(3.5);
    return fp.digest();
  };
  EXPECT_EQ(build(), build());
}

TEST(PipelineTag, EncodesSeedAndPermuteFlag) {
  // Frozen encoding: (seed << 1) | random_permute. Checkpoints store this
  // value, so the formula is part of the on-disk format.
  EXPECT_EQ(pipeline_tag(0, false), 0ULL);
  EXPECT_EQ(pipeline_tag(0, true), 1ULL);
  EXPECT_EQ(pipeline_tag(7, false), 14ULL);
  EXPECT_EQ(pipeline_tag(7, true), 15ULL);
  EXPECT_NE(pipeline_tag(3, true), pipeline_tag(3, false));
}

}  // namespace
}  // namespace mcm
