#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "../test_helpers.hpp"

namespace mcm {
namespace {

using testing::JsonValidator;

TEST(JsonBuilder, EmitsValidNestedStructure) {
  JsonBuilder json;
  json.begin_object()
      .field("name", "bench")
      .field("count", 3)
      .begin_array("points");
  for (int i = 0; i < 3; ++i) {
    json.begin_object().field("i", i).field("x", 0.5 * i).end_object();
  }
  json.end_array().end_object();
  EXPECT_TRUE(JsonValidator::valid(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"points\":["), std::string::npos);
}

// JSON has no NaN/Infinity literals; printf-style %g would emit bare `nan`
// or `inf` tokens and corrupt the document. The builder must map every
// non-finite double to null.
TEST(JsonBuilder, NonFiniteDoublesBecomeNull) {
  JsonBuilder json;
  json.begin_object()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("fine", 1.25)
      .end_object();
  EXPECT_EQ(json.str(),
            "{\"nan\":null,\"inf\":null,\"ninf\":null,\"fine\":1.25}");
  EXPECT_TRUE(JsonValidator::valid(json.str()));
}

TEST(JsonBuilder, ExplicitNullField) {
  JsonBuilder json;
  json.begin_object().null_field("missing").field("present", true).end_object();
  EXPECT_EQ(json.str(), "{\"missing\":null,\"present\":true}");
  EXPECT_TRUE(JsonValidator::valid(json.str()));
}

TEST(JsonBuilder, EscapesQuotesBackslashesAndControlChars) {
  JsonBuilder json;
  json.begin_object()
      .field("quote", "a\"b")
      .field("backslash", "a\\b")
      .field("newline", "a\nb")
      .field("tab", "a\tb")
      .field("cr", "a\rb")
      .field("bell", std::string("a\x07") + "b")
      .end_object();
  const std::string& out = json.str();
  EXPECT_NE(out.find("a\\\"b"), std::string::npos);
  EXPECT_NE(out.find("a\\\\b"), std::string::npos);
  EXPECT_NE(out.find("a\\nb"), std::string::npos);
  EXPECT_NE(out.find("a\\tb"), std::string::npos);
  EXPECT_NE(out.find("a\\rb"), std::string::npos);
  EXPECT_NE(out.find("a\\u0007b"), std::string::npos);
  // No raw control character may survive into the document.
  for (const char c : out) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_TRUE(JsonValidator::valid(out)) << out;
}

TEST(JsonBuilder, IntegerWidthsRoundTripExactly) {
  JsonBuilder json;
  json.begin_object()
      .field("i64", std::int64_t{-9007199254740993})
      .field("u64", std::uint64_t{18446744073709551615ull})
      .end_object();
  EXPECT_EQ(json.str(),
            "{\"i64\":-9007199254740993,\"u64\":18446744073709551615}");
  EXPECT_TRUE(JsonValidator::valid(json.str()));
}

TEST(JsonBuilder, TopLevelArrayAndEmptyContainers) {
  JsonBuilder json;
  json.begin_array().begin_object().end_object().begin_array().end_array()
      .end_array();
  EXPECT_EQ(json.str(), "[{},[]]");
  EXPECT_TRUE(JsonValidator::valid(json.str()));
}

// Sanity-check the validator itself so passing tests above mean something.
TEST(JsonValidatorSelfTest, RejectsMalformedDocuments) {
  EXPECT_TRUE(JsonValidator::valid("{\"a\":[1,2.5e-3,null,true]}"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\":nan}"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\":inf}"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\":1,}"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\" 1}"));
  EXPECT_FALSE(JsonValidator::valid("[1,2"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\":\"\n\"}"));  // raw control char
  EXPECT_FALSE(JsonValidator::valid(""));
  EXPECT_FALSE(JsonValidator::valid("{} trailing"));
}

}  // namespace
}  // namespace mcm
