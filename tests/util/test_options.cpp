#include "util/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mcm {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyValueSpaceForm) {
  const Options o = parse({"--cores", "1024"});
  EXPECT_EQ(o.get_int("cores", 0), 1024);
}

TEST(Options, KeyValueEqualsForm) {
  const Options o = parse({"--cores=2048"});
  EXPECT_EQ(o.get_int("cores", 0), 2048);
}

TEST(Options, BareFlagIsTrue) {
  const Options o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
}

TEST(Options, FlagFollowedByOption) {
  const Options o = parse({"--verbose", "--cores", "64"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_EQ(o.get_int("cores", 0), 64);
}

TEST(Options, PositionalCollected) {
  const Options o = parse({"input.mtx", "--cores", "4", "more"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.mtx");
  EXPECT_EQ(o.positional()[1], "more");
}

TEST(Options, DefaultsWhenAbsent) {
  const Options o = parse({});
  EXPECT_EQ(o.get("name", "fallback"), "fallback");
  EXPECT_EQ(o.get_int("n", 17), 17);
  EXPECT_DOUBLE_EQ(o.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(o.get_bool("b", true));
  EXPECT_FALSE(o.has("n"));
}

TEST(Options, DoubleParsing) {
  const Options o = parse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(o.get_double("scale", 0), 0.25);
}

TEST(Options, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=off"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
}

TEST(Options, MalformedIntegerThrows) {
  const Options o = parse({"--n=abc"});
  EXPECT_THROW((void)o.get_int("n", 0), std::invalid_argument);
}

TEST(Options, MalformedDoubleThrows) {
  const Options o = parse({"--x=1.5zz"});
  EXPECT_THROW((void)o.get_double("x", 0), std::invalid_argument);
}

TEST(Options, MalformedBoolThrows) {
  const Options o = parse({"--b=maybe"});
  EXPECT_THROW((void)o.get_bool("b", false), std::invalid_argument);
}

TEST(Options, EmptyOptionNameThrows) {
  std::vector<const char*> argv{"prog", "--=x"};
  EXPECT_THROW(Options::parse(2, argv.data()), std::invalid_argument);
}

TEST(Options, LastValueWins) {
  const Options o = parse({"--n=1", "--n=2"});
  EXPECT_EQ(o.get_int("n", 0), 2);
}

TEST(Options, GetChoiceAcceptsListedValue) {
  const Options o = parse({"--mode=abort"});
  EXPECT_EQ(o.get_choice("mode", "throw", {"off", "throw", "abort"}), "abort");
}

TEST(Options, GetChoiceFallsBackWhenAbsent) {
  const Options o = parse({});
  EXPECT_EQ(o.get_choice("mode", "throw", {"off", "throw", "abort"}), "throw");
}

TEST(Options, GetChoiceRejectsUnlistedValueNamingAllowed) {
  const Options o = parse({"--mode=loud"});
  try {
    (void)o.get_choice("mode", "throw", {"off", "throw", "abort"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("off|throw|abort"), std::string::npos);
    EXPECT_NE(what.find("loud"), std::string::npos);
  }
}

TEST(Options, GetChoiceSeesBareFlagAsTrue) {
  const Options o = parse({"--check"});
  EXPECT_EQ(o.get_choice("check", "off", {"true", "off", "throw"}), "true");
}

}  // namespace
}  // namespace mcm
