#include "util/radix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace mcm {
namespace {

struct Entry {
  Index key;
  int payload;
};

// Runs both paths (comparison fallback and radix) against std::stable_sort
// on the same data and checks element-wise equality — the two must produce
// identical orderings, including ties.
void check_matches_stable_sort(std::vector<Entry> v, Index max_key) {
  std::vector<Entry> expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
  std::vector<Entry> tmp;
  std::vector<std::uint32_t> count;
  stable_sort_by_key(v, tmp, count, max_key,
                     [](const Entry& e) { return e.key; });
  ASSERT_EQ(v.size(), expected.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].key, expected[i].key) << "i=" << i;
    EXPECT_EQ(v[i].payload, expected[i].payload) << "i=" << i;
  }
}

TEST(RadixSort, SmallInputUsesFallbackAndStaysStable) {
  std::vector<Entry> v;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    v.push_back({static_cast<Index>(rng.next() % 17), i});
  }
  check_matches_stable_sort(std::move(v), 16);
}

TEST(RadixSort, LargeInputMultiDigitKeys) {
  std::vector<Entry> v;
  Rng rng(11);
  const Index max_key = (Index{1} << 20) - 1;  // two 16-bit digits
  for (int i = 0; i < 5000; ++i) {
    v.push_back({static_cast<Index>(rng.next()) & max_key, i});
  }
  check_matches_stable_sort(std::move(v), max_key);
}

// max_key with bits at and above 2^48 previously drove the digit loop to a
// 64-bit shift by 64 — undefined behavior. The guarded loop must process all
// four 16-bit digits and stop.
TEST(RadixSort, HugeKeyBoundDoesNotOvershiftAndSortsAllDigits) {
  const Index max_key = std::numeric_limits<Index>::max();  // 2^63 - 1
  std::vector<Entry> v;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    // Spread keys across the full positive int64 range, top digit included.
    v.push_back({static_cast<Index>(rng.next() >> 1), i});
  }
  check_matches_stable_sort(std::move(v), max_key);
}

}  // namespace
}  // namespace mcm
