#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mcm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundYieldsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

TEST(Rng, SpawnProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.spawn();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  shuffle(empty.begin(), empty.end(), rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace mcm
