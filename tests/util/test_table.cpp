#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcm {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t("align");
  t.set_header({"a", "b"});
  t.add_row({"xxxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.render();
  // Both data rows must have their second column at the same offset.
  const auto first = out.find("xxxxx");
  const auto second = out.find("y", first);
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  const auto bar1 = out.find('|', first);
  const auto bar2 = out.find('|', second);
  EXPECT_EQ(bar1 - first, bar2 - second);
}

TEST(Table, WrongArityThrows) {
  Table t("bad");
  t.set_header({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(Table::num(0.5, 0), "0");  // rounds to even/below
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart chart("speedup", "cores", "x");
  chart.add_series("road_usa", {{24, 1}, {96, 3}, {384, 8}});
  chart.add_series("amazon", {{24, 1}, {96, 2}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("speedup"), std::string::npos);
  EXPECT_NE(out.find("road_usa"), std::string::npos);
  EXPECT_NE(out.find("amazon"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, EmptyChartDoesNotCrash) {
  AsciiChart chart("empty", "x", "y");
  const std::string out = chart.render();
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChart, LogAxesAnnotated) {
  AsciiChart chart("log", "p", "t");
  chart.set_log_x(true);
  chart.set_log_y(true);
  chart.add_series("s", {{1, 1}, {1024, 100}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("log x"), std::string::npos);
  EXPECT_NE(out.find("log y"), std::string::npos);
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart chart("one", "x", "y");
  chart.add_series("s", {{5, 5}});
  EXPECT_FALSE(chart.render().empty());
}

}  // namespace
}  // namespace mcm
